// Deterministic network fault injection. The paper's Fig. 7 degrades the
// network with uniform packet loss only; real V2X links also suffer bursty
// loss, latency jitter, duplication, reordering, asymmetric link failures
// and outright partitions. FaultModel injects all of those from a single
// seeded RNG, so a faulty run is exactly reproducible from its seed and a
// zero-valued FaultConfig is exactly the fault-free network: no random
// draws are consumed for disabled features, which keeps the benign path
// bit-identical to a build without the fault layer.
package vnet

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nwade/internal/detrand"
	"nwade/internal/ordered"
)

// BurstConfig parameterises a two-state Gilbert–Elliott loss channel: the
// channel flips between a good and a bad state with the given per-packet
// transition probabilities, and drops packets with a state-dependent rate.
// Mean loss is LossBad·πbad + LossGood·πgood with πbad = PEnterBad /
// (PEnterBad + PExitBad); small transition probabilities at the same mean
// loss produce longer bursts.
type BurstConfig struct {
	// PEnterBad is the good→bad transition probability per packet event.
	PEnterBad float64
	// PExitBad is the bad→good transition probability per packet event.
	PExitBad float64
	// LossGood is the drop probability while the channel is good.
	LossGood float64
	// LossBad is the drop probability while the channel is bad.
	LossBad float64
}

// enabled reports whether the burst channel does anything.
func (b BurstConfig) enabled() bool {
	return b.PEnterBad > 0 || b.LossGood > 0 || b.LossBad > 0
}

// LinkRule drops every packet on one directional link. "*" matches any
// node on either side, so {From: "v7", To: "*"} mutes v7's transmitter
// and {From: "*", To: "v7"} breaks its receiver.
type LinkRule struct {
	From NodeID
	To   NodeID
}

// matches reports whether a delivery from→to falls under the rule.
func (r LinkRule) matches(from, to NodeID) bool {
	return (r.From == Broadcast || r.From == from) && (r.To == Broadcast || r.To == to)
}

// Partition isolates a set of nodes during [Start, End): packets crossing
// the cut — exactly one endpoint inside Nodes — are dropped; traffic
// wholly inside or wholly outside the set is unaffected. Partition{Start:
// 20s, End: 30s, Nodes: [im]} makes the IM unreachable from 20s to 30s.
type Partition struct {
	Start time.Duration
	End   time.Duration
	Nodes []NodeID
}

// active reports whether the partition window covers now.
func (p Partition) active(now time.Duration) bool {
	return now >= p.Start && now < p.End
}

// contains reports whether the node is on the isolated side.
func (p Partition) contains(id NodeID) bool {
	for _, n := range p.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// FaultConfig declares which faults to inject. The zero value injects
// nothing and is guaranteed not to perturb the fault-free delivery
// schedule or random stream.
type FaultConfig struct {
	// Loss is an additional uniform per-receiver drop probability, on
	// top of Config.DropRate (which predates the fault layer and keeps
	// its own RNG stream for backward compatibility).
	Loss float64
	// Burst is the Gilbert–Elliott burst-loss channel.
	Burst BurstConfig
	// Jitter adds a uniform random delay in [0, Jitter) to each
	// delivery, on top of the fixed one-hop latency.
	Jitter time.Duration
	// DupProb duplicates a delivery with this probability; the copy is
	// delivered after an extra delay in [0, Jitter) (or immediately at
	// zero jitter), so duplicates may also arrive out of order.
	DupProb float64
	// ReorderProb holds a delivery back by ReorderDelay with this
	// probability, letting later transmissions overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration
	// Links are directional kill rules, applied unconditionally.
	Links []LinkRule
	// Partitions are timed network splits.
	Partitions []Partition
}

// Enabled reports whether any fault is configured.
func (c FaultConfig) Enabled() bool {
	return c.Loss > 0 || c.Burst.enabled() || c.Jitter > 0 || c.DupProb > 0 ||
		c.ReorderProb > 0 || len(c.Links) > 0 || len(c.Partitions) > 0
}

// fate is the fault layer's verdict on one delivery.
type fate struct {
	drop     bool
	extra    time.Duration // added to the one-hop latency
	dup      bool
	dupExtra time.Duration
}

// FaultModel is the seeded runtime of a FaultConfig. It draws from its
// own RNG — never the network's — in a fixed per-delivery order, so two
// runs with the same seed produce the identical delivery schedule. Not
// safe for concurrent use on its own; the owning Network serialises calls
// under its mutex.
type FaultModel struct {
	cfg FaultConfig
	rng *rand.Rand
	// rngSrc is rng's counting source, so checkpoints can capture the
	// model's exact position in its stream.
	rngSrc *detrand.Source
	bad    bool // Gilbert–Elliott channel state
}

// NewFaultModel builds a fault model; it returns nil when cfg injects
// nothing, and a nil *FaultModel judges every delivery as clean.
func NewFaultModel(cfg FaultConfig, seed int64) *FaultModel {
	if !cfg.Enabled() {
		return nil
	}
	fm := &FaultModel{cfg: cfg}
	fm.rng, fm.rngSrc = detrand.New(seed)
	return fm
}

// judge decides one delivery's fate. Draw order is fixed — burst, loss,
// jitter, reorder, duplication — and disabled features draw nothing, so
// enabling one fault never shifts another's random stream structure
// within a run.
func (fm *FaultModel) judge(now time.Duration, from, to NodeID) fate {
	if fm == nil {
		return fate{}
	}
	c := fm.cfg
	for _, r := range c.Links {
		if r.matches(from, to) {
			return fate{drop: true}
		}
	}
	for _, p := range c.Partitions {
		if p.active(now) && p.contains(from) != p.contains(to) {
			return fate{drop: true}
		}
	}
	if c.Burst.enabled() {
		// Advance the channel, then draw the state-dependent loss.
		if fm.bad {
			if fm.rng.Float64() < c.Burst.PExitBad {
				fm.bad = false
			}
		} else if fm.rng.Float64() < c.Burst.PEnterBad {
			fm.bad = true
		}
		rate := c.Burst.LossGood
		if fm.bad {
			rate = c.Burst.LossBad
		}
		if rate > 0 && fm.rng.Float64() < rate {
			return fate{drop: true}
		}
	}
	if c.Loss > 0 && fm.rng.Float64() < c.Loss {
		return fate{drop: true}
	}
	var f fate
	if c.Jitter > 0 {
		f.extra = time.Duration(fm.rng.Int63n(int64(c.Jitter)))
	}
	if c.ReorderProb > 0 && fm.rng.Float64() < c.ReorderProb {
		f.extra += c.ReorderDelay
	}
	if c.DupProb > 0 && fm.rng.Float64() < c.DupProb {
		f.dup = true
		if c.Jitter > 0 {
			f.dupExtra = time.Duration(fm.rng.Int63n(int64(c.Jitter)))
		}
	}
	return f
}

// --- Named fault profiles ---------------------------------------------

// faultProfiles are the CLI-selectable degraded-network settings. The
// burst profiles are tuned to ~15% mean loss so they compare directly
// with loss15; partition windows straddle the evaluation's default
// attack time (25 s).
var faultProfiles = map[string]FaultConfig{
	"none":   {},
	"loss5":  {Loss: 0.05},
	"loss15": {Loss: 0.15},
	// πbad = 0.02/(0.02+0.15) ≈ 0.118; mean loss ≈ 0.118·0.85 + 0.882·0.06 ≈ 15%.
	"burst15": {Burst: BurstConfig{PEnterBad: 0.02, PExitBad: 0.15, LossGood: 0.06, LossBad: 0.85}},
	"jitter":  {Jitter: 60 * time.Millisecond, ReorderProb: 0.10, ReorderDelay: 120 * time.Millisecond},
	"dup":     {DupProb: 0.15, Jitter: 20 * time.Millisecond},
	"partition": {Partitions: []Partition{
		{Start: 20 * time.Second, End: 30 * time.Second, Nodes: []NodeID{IMNode}},
	}},
	"chaos": {
		Loss:         0.05,
		Burst:        BurstConfig{PEnterBad: 0.01, PExitBad: 0.20, LossGood: 0.02, LossBad: 0.70},
		Jitter:       40 * time.Millisecond,
		DupProb:      0.05,
		ReorderProb:  0.05,
		ReorderDelay: 90 * time.Millisecond,
		Partitions: []Partition{
			{Start: 28 * time.Second, End: 33 * time.Second, Nodes: []NodeID{IMNode}},
		},
	},
}

// FaultProfile resolves a named degraded-network profile.
func FaultProfile(name string) (FaultConfig, bool) {
	c, ok := faultProfiles[name]
	return c, ok
}

// FaultProfileNames lists the available profiles, sorted.
func FaultProfileNames() []string {
	return ordered.Keys(faultProfiles)
}

// ParseFaultProfile resolves a profile name with a helpful error.
func ParseFaultProfile(name string) (FaultConfig, error) {
	if name == "" {
		return FaultConfig{}, nil
	}
	c, ok := FaultProfile(name)
	if !ok {
		return FaultConfig{}, fmt.Errorf("vnet: unknown fault profile %q (have %s)",
			name, strings.Join(FaultProfileNames(), ", "))
	}
	return c, nil
}
