// Checkpoint support for the network: the registered-node set, the
// delivery heap with its FIFO sequence counter, both RNG streams (the
// legacy DropRate stream and the fault model's), the Gilbert–Elliott
// channel phase, and the load statistics.
//
// Message payloads are `any`-typed and their concrete types live in
// packages above vnet, so the snapshot carries them through a caller-
// supplied codec: Snapshot receives an encoder that turns a payload into
// a self-describing PayloadEnvelope, RestoreState the matching decoder.
// The queue is serialized sorted by (deliver time, sequence) — the order
// Poll drains it — so the encoding is canonical: two networks that will
// behave identically snapshot to identical bytes even if their heap
// arrays are internally permuted differently.
package vnet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"nwade/internal/detrand"
	"nwade/internal/ordered"
)

// PayloadEnvelope is a serialized message payload tagged with its
// concrete type name, so a decoder can rebuild the original value.
type PayloadEnvelope struct {
	Type string
	Data json.RawMessage
}

// PayloadEncoder converts a payload value into its envelope.
type PayloadEncoder func(any) (PayloadEnvelope, error)

// PayloadDecoder rebuilds a payload value from its envelope.
type PayloadDecoder func(PayloadEnvelope) (any, error)

// QueuedMsgState is one in-flight delivery.
type QueuedMsgState struct {
	To      NodeID // receiver of this copy
	From    NodeID
	MsgTo   NodeID // Message.To: Broadcast for broadcast transmissions
	Kind    string
	Payload PayloadEnvelope
	Size    int
	Sent    time.Duration
	Deliver time.Duration
	Seq     uint64
}

// FaultModelState is the fault layer's mutable state.
type FaultModelState struct {
	RNG detrand.State
	Bad bool // Gilbert–Elliott channel phase
}

// NetworkState is a serializable snapshot of a Network.
type NetworkState struct {
	RNG   detrand.State
	Fault *FaultModelState // nil when no fault model is configured
	Nodes []NodeID
	Queue []QueuedMsgState
	Seq   uint64
	Stats Stats
}

// Snapshot captures the network's complete mutable state. enc serializes
// message payloads; it must accept every payload type currently queued.
func (n *Network) Snapshot(enc PayloadEncoder) (NetworkState, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := NetworkState{
		RNG:   n.rngSrc.State(),
		Nodes: ordered.Keys(n.nodes),
		Seq:   n.seq,
		Stats: n.statsCopyLocked(),
	}
	if n.fm != nil {
		st.Fault = &FaultModelState{RNG: n.fm.rngSrc.State(), Bad: n.fm.bad}
	}
	st.Queue = make([]QueuedMsgState, 0, len(n.queue))
	for _, q := range n.queue {
		env, err := enc(q.Msg.Payload)
		if err != nil {
			return NetworkState{}, fmt.Errorf("vnet: snapshot queued %s: %w", q.Msg.Kind, err)
		}
		st.Queue = append(st.Queue, QueuedMsgState{
			To: q.To, From: q.Msg.From, MsgTo: q.Msg.To, Kind: q.Msg.Kind,
			Payload: env, Size: q.Msg.Size, Sent: q.Msg.Sent,
			Deliver: q.Msg.Deliver, Seq: q.seq,
		})
	}
	sort.Slice(st.Queue, func(i, j int) bool {
		if st.Queue[i].Deliver != st.Queue[j].Deliver {
			return st.Queue[i].Deliver < st.Queue[j].Deliver
		}
		return st.Queue[i].Seq < st.Queue[j].Seq
	})
	return st, nil
}

// RestoreState rewinds the network to a snapshot. The network must have
// been built with the same Config and seed as the original, so the fault
// model's presence matches the snapshot's.
func (n *Network) RestoreState(st NetworkState, dec PayloadDecoder) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rngSrc.Restore(st.RNG)
	if (n.fm == nil) != (st.Fault == nil) {
		return fmt.Errorf("vnet: restore: fault model mismatch (have %v, snapshot %v)",
			n.fm != nil, st.Fault != nil)
	}
	if n.fm != nil {
		n.fm.rngSrc.Restore(st.Fault.RNG)
		n.fm.bad = st.Fault.Bad
	}
	n.nodes = make(map[NodeID]bool, len(st.Nodes))
	// st.Nodes is sorted (ordered.Keys at snapshot time), so it can seed
	// the maintained broadcast order directly.
	n.order = append(n.order[:0], st.Nodes...)
	for _, id := range st.Nodes {
		n.nodes[id] = true
	}
	n.seq = st.Seq
	n.stats = Stats{
		Packets:      make(map[string]int, len(st.Stats.Packets)),
		Bytes:        make(map[string]int, len(st.Stats.Bytes)),
		Dropped:      st.Stats.Dropped,
		Delivered:    st.Stats.Delivered,
		FaultDropped: st.Stats.FaultDropped,
		Duplicated:   st.Stats.Duplicated,
	}
	for k, v := range st.Stats.Packets {
		n.stats.Packets[k] = v
	}
	for k, v := range st.Stats.Bytes {
		n.stats.Bytes[k] = v
	}
	n.queue = n.queue[:0]
	for _, q := range st.Queue {
		payload, err := dec(q.Payload)
		if err != nil {
			return fmt.Errorf("vnet: restore queued %s: %w", q.Kind, err)
		}
		n.queue = append(n.queue, queued{
			Delivery: Delivery{To: q.To, Msg: Message{
				From: q.From, To: q.MsgTo, Kind: q.Kind, Payload: payload,
				Size: q.Size, Sent: q.Sent, Deliver: q.Deliver,
			}},
			seq: q.Seq,
		})
	}
	// The snapshot is sorted by (deliver, seq) — already a valid heap by
	// the same comparison — but re-establish the invariant explicitly.
	n.queue.init()
	return nil
}

// statsCopyLocked deep-copies the stats. Caller holds the lock.
func (n *Network) statsCopyLocked() Stats {
	out := Stats{
		Packets:      make(map[string]int, len(n.stats.Packets)),
		Bytes:        make(map[string]int, len(n.stats.Bytes)),
		Dropped:      n.stats.Dropped,
		Delivered:    n.stats.Delivered,
		FaultDropped: n.stats.FaultDropped,
		Duplicated:   n.stats.Duplicated,
	}
	for k, v := range n.stats.Packets {
		out.Packets[k] = v
	}
	for k, v := range n.stats.Bytes {
		out.Bytes[k] = v
	}
	return out
}
