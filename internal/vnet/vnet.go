// Package vnet simulates the vehicular network of the NWADE evaluation: a
// broadcast medium with fixed one-hop latency (30 ms in the paper), a
// maximum communication radius (1500 ft), optional packet loss, and
// per-message-kind packet counters used to reproduce the network-load
// experiment (Fig. 7).
//
// The network is deliberately simple — the paper models it as latency plus
// a radius — but it is safe for concurrent senders and delivers messages
// deterministically given a seed.
package vnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nwade/internal/detrand"
	"nwade/internal/geom"
	"nwade/internal/obs"
	"nwade/internal/units"
)

// NodeID identifies a network participant: the intersection manager or a
// vehicle.
type NodeID string

// IMNode is the intersection manager's address.
const IMNode NodeID = "im"

// Broadcast is the destination of broadcast messages.
const Broadcast NodeID = "*"

// VehicleNode derives a vehicle's network address from its numeric ID.
func VehicleNode(id uint64) NodeID { return NodeID(fmt.Sprintf("v%d", id)) }

// Message is one packet in flight or delivered.
type Message struct {
	From    NodeID
	To      NodeID // Broadcast for broadcast transmissions
	Kind    string
	Payload any
	Size    int           // payload size estimate in bytes, for load stats
	Sent    time.Duration // simulation time of transmission
	Deliver time.Duration // simulation time of delivery
}

// Delivery is a message copy arriving at one receiver.
type Delivery struct {
	To  NodeID
	Msg Message
}

// Config holds the network parameters.
type Config struct {
	// Latency is the one-hop delivery latency (default 30 ms).
	Latency time.Duration
	// CommRadius limits who hears a transmission (default 1500 ft).
	// Zero or negative means unlimited.
	CommRadius float64
	// DropRate is the per-receiver probability of losing a packet.
	DropRate float64
	// Faults configures the deterministic fault-injection layer (burst
	// loss, jitter, duplication, reordering, link kills, partitions).
	// The zero value injects nothing and leaves delivery bit-identical
	// to a network without the fault layer.
	Faults FaultConfig
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Latency == 0 {
		c.Latency = units.NetworkLatency
	}
	if c.CommRadius == 0 {
		c.CommRadius = units.CommRadius
	}
	return c
}

// Locator resolves a node's current position; ok=false means the node has
// no physical position (it left the simulation).
type Locator func(NodeID) (geom.Vec2, bool)

// Stats aggregates network load, keyed by message kind.
type Stats struct {
	Packets   map[string]int // transmissions per kind
	Bytes     map[string]int
	Dropped   int // per-receiver losses (all causes)
	Delivered int // per-receiver deliveries
	// FaultDropped counts the subset of Dropped caused by the fault
	// layer (burst loss, link kills, partitions, uniform fault loss).
	FaultDropped int
	// Duplicated counts extra delivery copies injected by the fault
	// layer.
	Duplicated int
}

// TotalPackets sums transmissions over all kinds.
func (s Stats) TotalPackets() int {
	var n int
	for _, v := range s.Packets {
		n += v
	}
	return n
}

// Network is the simulated medium.
type Network struct {
	mu  sync.Mutex
	cfg Config
	rng *rand.Rand
	// rngSrc is rng's counting source (the legacy DropRate stream), so
	// checkpoints can capture its exact position.
	rngSrc  *detrand.Source
	fm      *FaultModel
	locator Locator
	nodes   map[NodeID]bool
	// order keeps the registered nodes sorted; it is maintained
	// incrementally by Register/Unregister so BroadcastMsg never has to
	// collect-and-sort the node set per transmission.
	order []NodeID
	queue deliveryHeap
	seq   uint64
	stats Stats
	// obs is the nil-by-default observability sink: per-kind packet and
	// byte counters, the message-size histogram, and one trace record
	// per transmission.
	obs *obs.Sink
}

// SetObs installs the observability sink (nil disables it).
func (n *Network) SetObs(o *obs.Sink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obs = o
}

// New creates a network. locator may be nil, which disables radius checks.
// The fault model, when configured, draws from its own RNG stream (derived
// from seed) so the legacy DropRate stream is undisturbed.
func New(cfg Config, seed int64, locator Locator) *Network {
	cfg = cfg.Normalize()
	n := &Network{
		cfg:     cfg,
		fm:      NewFaultModel(cfg.Faults, seed^0x5eedfa17),
		locator: locator,
		nodes:   make(map[NodeID]bool),
		stats: Stats{
			Packets: make(map[string]int),
			Bytes:   make(map[string]int),
		},
	}
	n.rng, n.rngSrc = detrand.New(seed)
	return n
}

// Register adds a node to the medium.
func (n *Network) Register(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.nodes[id] {
		return
	}
	n.nodes[id] = true
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order, "")
	copy(n.order[i+1:], n.order[i:])
	n.order[i] = id
}

// Unregister removes a node; queued deliveries to it are discarded at
// poll time.
func (n *Network) Unregister(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[id] {
		return
	}
	delete(n.nodes, id)
	i := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order[:i], n.order[i+1:]...)
}

// ErrUnknownNode is returned when sending to an unregistered node.
var ErrUnknownNode = errors.New("vnet: unknown node")

// inRange reports whether two nodes can hear each other at the moment of
// transmission.
func (n *Network) inRange(a, b NodeID) bool {
	if n.locator == nil || n.cfg.CommRadius <= 0 {
		return true
	}
	pa, okA := n.locator(a)
	pb, okB := n.locator(b)
	if !okA || !okB {
		return false
	}
	return pa.Dist(pb) <= n.cfg.CommRadius
}

// Unicast sends one packet. It returns false when the receiver is out of
// range or the packet is dropped; an error when the receiver is not
// registered.
func (n *Network) Unicast(now time.Duration, from, to NodeID, kind string, payload any, size int) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.nodes[to] {
		return false, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	n.stats.Packets[kind]++
	n.stats.Bytes[kind] += size
	n.obs.NetSend(now, string(from), string(to), kind, size, false)
	if !n.inRange(from, to) || n.dropped() {
		n.stats.Dropped++
		n.obs.Inc(obs.CntNetDropped)
		return false, nil
	}
	f := n.fm.judge(now, from, to)
	if f.drop {
		n.stats.Dropped++
		n.stats.FaultDropped++
		n.obs.Inc(obs.CntNetDropped)
		n.obs.Inc(obs.CntNetFaultDropped)
		return false, nil
	}
	n.deliverCopies(f, Delivery{To: to, Msg: Message{
		From: from, To: to, Kind: kind, Payload: payload, Size: size,
		Sent: now, Deliver: now + n.cfg.Latency,
	}})
	return true, nil
}

// deliverCopies enqueues a judged delivery plus any fault-injected
// duplicate. Caller holds the lock.
func (n *Network) deliverCopies(f fate, d Delivery) {
	d.Msg.Deliver += f.extra
	n.push(d)
	if f.dup {
		n.stats.Duplicated++
		n.obs.Inc(obs.CntNetDuplicated)
		dup := d
		dup.Msg.Deliver += f.dupExtra
		n.push(dup)
	}
}

// BroadcastMsg transmits one packet heard by every registered node within
// range of the sender (excluding the sender). It returns the number of
// receivers that will get a copy. A broadcast counts as ONE packet in the
// load statistics — one transmission on the shared medium.
func (n *Network) BroadcastMsg(now time.Duration, from NodeID, kind string, payload any, size int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Packets[kind]++
	n.stats.Bytes[kind] += size
	n.obs.NetSend(now, string(from), string(Broadcast), kind, size, true)
	// Deterministic receiver order (the maintained sorted node list —
	// identical to sorting the node set per call).
	var count int
	for _, id := range n.order {
		if id == from {
			continue
		}
		if !n.inRange(from, id) || n.dropped() {
			n.stats.Dropped++
			n.obs.Inc(obs.CntNetDropped)
			continue
		}
		f := n.fm.judge(now, from, id)
		if f.drop {
			n.stats.Dropped++
			n.stats.FaultDropped++
			n.obs.Inc(obs.CntNetDropped)
			n.obs.Inc(obs.CntNetFaultDropped)
			continue
		}
		n.deliverCopies(f, Delivery{To: id, Msg: Message{
			From: from, To: Broadcast, Kind: kind, Payload: payload, Size: size,
			Sent: now, Deliver: now + n.cfg.Latency,
		}})
		count++
	}
	return count
}

// dropped draws the per-receiver loss. Caller holds the lock.
func (n *Network) dropped() bool {
	return n.cfg.DropRate > 0 && n.rng.Float64() < n.cfg.DropRate
}

// push enqueues a delivery. Caller holds the lock.
func (n *Network) push(d Delivery) {
	n.seq++
	n.queue.push(queued{Delivery: d, seq: n.seq})
}

// Poll returns every delivery due at or before now, in delivery-time
// order (FIFO among equal times). Deliveries to nodes that have since
// unregistered are silently discarded.
func (n *Network) Poll(now time.Duration) []Delivery {
	return n.PollInto(now, nil)
}

// PollInto is Poll appending into a caller-provided buffer (pass
// buf[:0] to reuse its capacity across ticks).
func (n *Network) PollInto(now time.Duration, buf []Delivery) []Delivery {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := buf
	for n.queue.Len() > 0 && n.queue[0].Msg.Deliver <= now {
		d := n.queue.pop()
		if !n.nodes[d.To] {
			n.stats.Dropped++
			n.obs.Inc(obs.CntNetDropped)
			continue
		}
		n.stats.Delivered++
		n.obs.Inc(obs.CntNetDelivered)
		out = append(out, d.Delivery)
	}
	return out
}

// Pending returns the number of queued deliveries.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queue.Len()
}

// Stats returns a copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := Stats{
		Packets:      make(map[string]int, len(n.stats.Packets)),
		Bytes:        make(map[string]int, len(n.stats.Bytes)),
		Dropped:      n.stats.Dropped,
		Delivered:    n.stats.Delivered,
		FaultDropped: n.stats.FaultDropped,
		Duplicated:   n.stats.Duplicated,
	}
	for k, v := range n.stats.Packets {
		out.Packets[k] = v
	}
	for k, v := range n.stats.Bytes {
		out.Bytes[k] = v
	}
	return out
}

// queued is a heap entry; seq breaks delivery-time ties FIFO.
type queued struct {
	Delivery
	seq uint64
}

// deliveryHeap is a binary min-heap ordered by delivery time, then seq.
// It implements sifting directly — container/heap's interface methods box
// every pushed and popped element into an `any`, one heap allocation per
// message copy on the tick's hottest queue.
type deliveryHeap []queued

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) less(i, j int) bool {
	if h[i].Msg.Deliver != h[j].Msg.Deliver {
		return h[i].Msg.Deliver < h[j].Msg.Deliver
	}
	return h[i].seq < h[j].seq
}

func (h *deliveryHeap) push(q queued) {
	*h = append(*h, q)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *deliveryHeap) pop() queued {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = queued{} // drop payload references
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s.less(l, min) {
			min = l
		}
		if r < len(s) && s.less(r, min) {
			min = r
		}
		if min == i {
			return top
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// init restores the heap invariant over arbitrary contents (snapshot
// restore).
func (h deliveryHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			min := j
			if l < len(h) && h.less(l, min) {
				min = l
			}
			if r < len(h) && h.less(r, min) {
				min = r
			}
			if min == j {
				break
			}
			h[j], h[min] = h[min], h[j]
			j = min
		}
	}
}
