package vnet

import (
	"errors"
	"testing"
	"time"

	"nwade/internal/geom"
)

func fixedLocator(pos map[NodeID]geom.Vec2) Locator {
	return func(id NodeID) (geom.Vec2, bool) {
		p, ok := pos[id]
		return p, ok
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := New(Config{Latency: 30 * time.Millisecond}, 1, nil)
	n.Register("a")
	n.Register("b")
	ok, err := n.Unicast(0, "a", "b", "ping", 42, 100)
	if err != nil || !ok {
		t.Fatalf("Unicast = %v, %v", ok, err)
	}
	// Not yet due.
	if got := n.Poll(20 * time.Millisecond); len(got) != 0 {
		t.Errorf("early Poll returned %d", len(got))
	}
	got := n.Poll(30 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("Poll = %d deliveries", len(got))
	}
	d := got[0]
	if d.To != "b" || d.Msg.From != "a" || d.Msg.Kind != "ping" || d.Msg.Payload != 42 {
		t.Errorf("delivery = %+v", d)
	}
	if d.Msg.Deliver != 30*time.Millisecond {
		t.Errorf("Deliver = %v", d.Msg.Deliver)
	}
}

func TestUnicastUnknownNode(t *testing.T) {
	n := New(Config{}, 1, nil)
	n.Register("a")
	if _, err := n.Unicast(0, "a", "ghost", "x", nil, 1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node: %v", err)
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	pos := map[NodeID]geom.Vec2{
		"a": geom.V(0, 0),
		"b": geom.V(100, 0),
		"c": geom.V(200, 0),
		"d": geom.V(5000, 0), // out of range
	}
	n := New(Config{CommRadius: 457, Latency: 30 * time.Millisecond}, 1, fixedLocator(pos))
	for id := range pos {
		n.Register(id)
	}
	count := n.BroadcastMsg(0, "a", "block", "payload", 500)
	if count != 2 {
		t.Fatalf("receivers = %d, want 2", count)
	}
	got := n.Poll(time.Second)
	if len(got) != 2 {
		t.Fatalf("deliveries = %d", len(got))
	}
	seen := map[NodeID]bool{}
	for _, d := range got {
		seen[d.To] = true
		if d.Msg.To != Broadcast {
			t.Errorf("broadcast To = %v", d.Msg.To)
		}
	}
	if !seen["b"] || !seen["c"] || seen["d"] || seen["a"] {
		t.Errorf("receivers = %v", seen)
	}
	// One transmission counted.
	if n.Stats().Packets["block"] != 1 {
		t.Errorf("packets = %d, want 1 per broadcast", n.Stats().Packets["block"])
	}
}

func TestUnicastOutOfRangeDropped(t *testing.T) {
	pos := map[NodeID]geom.Vec2{"a": geom.V(0, 0), "b": geom.V(9999, 0)}
	n := New(Config{CommRadius: 457}, 1, fixedLocator(pos))
	n.Register("a")
	n.Register("b")
	ok, err := n.Unicast(0, "a", "b", "x", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("out-of-range unicast delivered")
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", n.Stats().Dropped)
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 1.0}, 1, nil)
	n.Register("a")
	n.Register("b")
	ok, err := n.Unicast(0, "a", "b", "x", nil, 1)
	if err != nil || ok {
		t.Errorf("full drop rate delivered: %v, %v", ok, err)
	}
	n2 := New(Config{DropRate: 0}, 1, nil)
	n2.Register("a")
	n2.Register("b")
	if ok, _ := n2.Unicast(0, "a", "b", "x", nil, 1); !ok {
		t.Error("zero drop rate lost a packet")
	}
}

func TestPollOrderFIFOAmongEqualTimes(t *testing.T) {
	n := New(Config{Latency: 10 * time.Millisecond}, 1, nil)
	n.Register("r")
	n.Register("s")
	for i := 0; i < 5; i++ {
		if _, err := n.Unicast(0, "s", "r", "k", i, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := n.Poll(time.Second)
	for i, d := range got {
		if d.Msg.Payload != i {
			t.Fatalf("out of order: got %v at %d", d.Msg.Payload, i)
		}
	}
}

func TestUnregisteredReceiverDiscarded(t *testing.T) {
	n := New(Config{Latency: time.Millisecond}, 1, nil)
	n.Register("a")
	n.Register("b")
	if _, err := n.Unicast(0, "a", "b", "x", nil, 1); err != nil {
		t.Fatal(err)
	}
	n.Unregister("b") // b leaves before delivery
	if got := n.Poll(time.Second); len(got) != 0 {
		t.Errorf("delivered to unregistered node: %v", got)
	}
	if n.Pending() != 0 {
		t.Errorf("Pending = %d", n.Pending())
	}
}

func TestStatsAccumulate(t *testing.T) {
	n := New(Config{Latency: time.Millisecond}, 1, nil)
	n.Register("a")
	n.Register("b")
	for i := 0; i < 3; i++ {
		if _, err := n.Unicast(0, "a", "b", "report", nil, 200); err != nil {
			t.Fatal(err)
		}
	}
	n.BroadcastMsg(0, "a", "block", nil, 1000)
	st := n.Stats()
	if st.Packets["report"] != 3 || st.Packets["block"] != 1 {
		t.Errorf("Packets = %v", st.Packets)
	}
	if st.Bytes["report"] != 600 || st.Bytes["block"] != 1000 {
		t.Errorf("Bytes = %v", st.Bytes)
	}
	if st.TotalPackets() != 4 {
		t.Errorf("TotalPackets = %d", st.TotalPackets())
	}
	n.Poll(time.Second)
	if got := n.Stats().Delivered; got != 4 { // 3 unicasts + 1 broadcast copy to b
		t.Errorf("Delivered = %d", got)
	}
	// Stats returns a copy.
	st2 := n.Stats()
	st2.Packets["report"] = 999
	if n.Stats().Packets["report"] == 999 {
		t.Error("Stats not a copy")
	}
}

func TestBroadcastDeterministicOrder(t *testing.T) {
	run := func() []NodeID {
		n := New(Config{Latency: time.Millisecond}, 7, nil)
		for _, id := range []NodeID{"v3", "v1", "v2", "im"} {
			n.Register(id)
		}
		n.BroadcastMsg(0, "im", "block", nil, 1)
		var order []NodeID
		for _, d := range n.Poll(time.Second) {
			order = append(order, d.To)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("deliveries = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("broadcast delivery order not deterministic")
		}
	}
}

func TestVehicleNode(t *testing.T) {
	if got := VehicleNode(17); got != "v17" {
		t.Errorf("VehicleNode = %q", got)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Latency != 30*time.Millisecond {
		t.Errorf("Latency default = %v", c.Latency)
	}
	if c.CommRadius < 457 || c.CommRadius > 458 {
		t.Errorf("CommRadius default = %v", c.CommRadius)
	}
}
