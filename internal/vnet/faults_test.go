package vnet

import (
	"math"
	"testing"
	"time"
)

func TestFaultModelDisabled(t *testing.T) {
	if fm := NewFaultModel(FaultConfig{}, 7); fm != nil {
		t.Fatalf("zero config built a model: %+v", fm)
	}
	var fm *FaultModel
	f := fm.judge(time.Second, "a", "b")
	if f.drop || f.dup || f.extra != 0 || f.dupExtra != 0 {
		t.Errorf("nil model fate = %+v, want clean", f)
	}
}

// TestLossStatistics drives many deliveries through uniform and burst
// channels and checks the realised drop rate against the configured mean.
func TestLossStatistics(t *testing.T) {
	const n = 40000
	cases := []struct {
		name string
		cfg  FaultConfig
		mean float64 // expected drop fraction
		tol  float64
	}{
		{"uniform5", FaultConfig{Loss: 0.05}, 0.05, 0.01},
		{"uniform15", FaultConfig{Loss: 0.15}, 0.15, 0.01},
		// πbad = 0.02/(0.02+0.15) ≈ 0.1176;
		// mean = 0.1176·0.85 + 0.8824·0.06 ≈ 0.153.
		{"burst15", FaultConfig{Burst: BurstConfig{
			PEnterBad: 0.02, PExitBad: 0.15, LossGood: 0.06, LossBad: 0.85,
		}}, 0.153, 0.03},
		{"burstPure", FaultConfig{Burst: BurstConfig{
			PEnterBad: 0.05, PExitBad: 0.25, LossGood: 0, LossBad: 1.0,
		}}, 0.05 / (0.05 + 0.25), 0.03},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := NewFaultModel(tc.cfg, 11)
			var drops int
			for i := 0; i < n; i++ {
				if fm.judge(0, "a", "b").drop {
					drops++
				}
			}
			got := float64(drops) / n
			if math.Abs(got-tc.mean) > tc.tol {
				t.Errorf("drop rate = %.4f, want %.3f ± %.3f", got, tc.mean, tc.tol)
			}
		})
	}
}

// TestBurstsAreBursty checks the defining property of the Gilbert–Elliott
// channel: at the same mean loss, drops clump into longer runs than under
// uniform loss.
func TestBurstsAreBursty(t *testing.T) {
	const n = 40000
	meanRun := func(cfg FaultConfig) float64 {
		fm := NewFaultModel(cfg, 5)
		var runs, dropped int
		inRun := false
		for i := 0; i < n; i++ {
			if fm.judge(0, "a", "b").drop {
				dropped++
				if !inRun {
					runs++
					inRun = true
				}
			} else {
				inRun = false
			}
		}
		if runs == 0 {
			t.Fatal("no drops observed")
		}
		return float64(dropped) / float64(runs)
	}
	uniform := meanRun(FaultConfig{Loss: 0.15})
	burst := meanRun(FaultConfig{Burst: BurstConfig{
		PEnterBad: 0.02, PExitBad: 0.15, LossGood: 0.06, LossBad: 0.85,
	}})
	if burst <= uniform*1.5 {
		t.Errorf("burst mean run %.2f not clearly longer than uniform %.2f", burst, uniform)
	}
}

func TestLinkRules(t *testing.T) {
	cases := []struct {
		name     string
		rule     LinkRule
		from, to NodeID
		drop     bool
	}{
		{"muteTx matching", LinkRule{From: "v7", To: Broadcast}, "v7", "im", true},
		{"muteTx other sender", LinkRule{From: "v7", To: Broadcast}, "v8", "im", false},
		{"deafRx matching", LinkRule{From: Broadcast, To: "v7"}, "im", "v7", true},
		{"deafRx other receiver", LinkRule{From: Broadcast, To: "v7"}, "im", "v8", false},
		{"directional", LinkRule{From: "a", To: "b"}, "b", "a", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := NewFaultModel(FaultConfig{Links: []LinkRule{tc.rule}}, 1)
			if got := fm.judge(0, tc.from, tc.to).drop; got != tc.drop {
				t.Errorf("judge(%s→%s) drop = %v, want %v", tc.from, tc.to, got, tc.drop)
			}
		})
	}
}

func TestPartitionWindows(t *testing.T) {
	cfg := FaultConfig{Partitions: []Partition{
		{Start: 20 * time.Second, End: 30 * time.Second, Nodes: []NodeID{IMNode}},
	}}
	cases := []struct {
		name     string
		at       time.Duration
		from, to NodeID
		drop     bool
	}{
		{"before window", 19*time.Second + 999*time.Millisecond, "v1", IMNode, false},
		{"window start inclusive", 20 * time.Second, "v1", IMNode, true},
		{"mid window to IM", 25 * time.Second, "v1", IMNode, true},
		{"mid window from IM", 25 * time.Second, IMNode, "v1", true},
		{"mid window vehicle to vehicle", 25 * time.Second, "v1", "v2", false},
		{"window end exclusive", 30 * time.Second, "v1", IMNode, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := NewFaultModel(cfg, 1)
			if got := fm.judge(tc.at, tc.from, tc.to).drop; got != tc.drop {
				t.Errorf("judge(%v, %s→%s) drop = %v, want %v", tc.at, tc.from, tc.to, got, tc.drop)
			}
		})
	}
}

// TestSameSeedSameSchedule is the determinism contract: two models with
// the same config and seed hand every delivery the identical fate.
func TestSameSeedSameSchedule(t *testing.T) {
	cfg, _ := FaultProfile("chaos")
	a := NewFaultModel(cfg, 42)
	b := NewFaultModel(cfg, 42)
	other := NewFaultModel(cfg, 43)
	diverged := false
	for i := 0; i < 5000; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		fa := a.judge(at, "v1", IMNode)
		fb := b.judge(at, "v1", IMNode)
		if fa != fb {
			t.Fatalf("delivery %d: same seed diverged: %+v vs %+v", i, fa, fb)
		}
		if fa != other.judge(at, "v1", IMNode) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced the identical 5000-delivery schedule")
	}
}

func TestJitterAndDuplication(t *testing.T) {
	cfg := FaultConfig{Jitter: 50 * time.Millisecond, DupProb: 1.0}
	fm := NewFaultModel(cfg, 9)
	sawExtra := false
	for i := 0; i < 200; i++ {
		f := fm.judge(0, "a", "b")
		if f.drop {
			t.Fatalf("delivery %d dropped without loss configured", i)
		}
		if !f.dup {
			t.Fatalf("delivery %d not duplicated at DupProb=1", i)
		}
		if f.extra < 0 || f.extra >= cfg.Jitter || f.dupExtra < 0 || f.dupExtra >= cfg.Jitter {
			t.Fatalf("delivery %d jitter out of range: %+v", i, f)
		}
		if f.extra > 0 {
			sawExtra = true
		}
	}
	if !sawExtra {
		t.Error("no delivery drew nonzero jitter in 200 tries")
	}
}

func TestReorderDelay(t *testing.T) {
	cfg := FaultConfig{ReorderProb: 1.0, ReorderDelay: 120 * time.Millisecond}
	fm := NewFaultModel(cfg, 3)
	f := fm.judge(0, "a", "b")
	if f.extra != cfg.ReorderDelay {
		t.Errorf("extra = %v, want %v", f.extra, cfg.ReorderDelay)
	}
}

// TestNetworkFaultStats exercises the fault layer end to end through the
// Network: drops are tallied as FaultDropped, duplicates as Duplicated
// and delivered twice.
func TestNetworkFaultStats(t *testing.T) {
	t.Run("loss", func(t *testing.T) {
		n := New(Config{Latency: 10 * time.Millisecond, Faults: FaultConfig{Loss: 1.0}}, 1, nil)
		n.Register("a")
		n.Register("b")
		ok, err := n.Unicast(0, "a", "b", "ping", nil, 8)
		if err != nil || ok {
			t.Fatalf("Unicast = %v, %v; want dropped", ok, err)
		}
		if got := n.Poll(time.Second); len(got) != 0 {
			t.Errorf("delivered %d packets at Loss=1", len(got))
		}
		st := n.Stats()
		if st.FaultDropped != 1 || st.Dropped != 1 || st.Delivered != 0 {
			t.Errorf("stats = %+v", st)
		}
	})
	t.Run("duplication", func(t *testing.T) {
		n := New(Config{Latency: 10 * time.Millisecond, Faults: FaultConfig{DupProb: 1.0}}, 1, nil)
		n.Register("a")
		n.Register("b")
		if ok, err := n.Unicast(0, "a", "b", "ping", nil, 8); err != nil || !ok {
			t.Fatalf("Unicast = %v, %v", ok, err)
		}
		if got := n.Poll(time.Second); len(got) != 2 {
			t.Fatalf("delivered %d copies at DupProb=1, want 2", len(got))
		}
		st := n.Stats()
		if st.Duplicated != 1 || st.Delivered != 2 {
			t.Errorf("stats = %+v", st)
		}
	})
	t.Run("partition", func(t *testing.T) {
		cfg := Config{Latency: 10 * time.Millisecond, Faults: FaultConfig{Partitions: []Partition{
			{Start: 0, End: time.Second, Nodes: []NodeID{"b"}},
		}}}
		n := New(cfg, 1, nil)
		n.Register("a")
		n.Register("b")
		if ok, _ := n.Unicast(500*time.Millisecond, "a", "b", "ping", nil, 8); ok {
			t.Error("delivery crossed an active partition")
		}
		if ok, _ := n.Unicast(time.Second, "a", "b", "ping", nil, 8); !ok {
			t.Error("delivery dropped after the partition healed")
		}
	})
}

func TestFaultProfiles(t *testing.T) {
	for _, name := range FaultProfileNames() {
		cfg, ok := FaultProfile(name)
		if !ok {
			t.Fatalf("FaultProfile(%q) missing", name)
		}
		if name == "none" {
			if cfg.Enabled() {
				t.Error("profile none is enabled")
			}
			continue
		}
		if !cfg.Enabled() {
			t.Errorf("profile %q is a no-op", name)
		}
	}
	if _, err := ParseFaultProfile("bogus"); err == nil {
		t.Error("ParseFaultProfile accepted an unknown name")
	}
	if cfg, err := ParseFaultProfile(""); err != nil || cfg.Enabled() {
		t.Errorf("empty profile = %+v, %v; want clean", cfg, err)
	}
}
