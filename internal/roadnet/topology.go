// Package roadnet composes single-intersection simulation engines into a
// city-scale road network: a grid (or corridor) of intersections joined
// by directed links. Each intersection is one region — its own engine,
// traffic generator, VANET, intersection manager and plan chain —
// stepping in lockstep with the others. Regions interact only at tick
// boundaries, through two deterministic channels:
//
//   - Handoff: a vehicle crossing a linked exit leg is re-injected into
//     the adjacent region after the link's travel time, keeping its
//     identity, characteristics and legacy status.
//   - The backbone: intersection managers exchange chain-head beacons
//     and gossip cross-intersection attack reports over a dedicated
//     vnet, so one region's confirmed suspect raises the neighborhood
//     watch across the network.
//
// Regions advance in parallel on a worker pool; every cross-region
// effect is applied sequentially in region-index order, so results are
// bit-identical for any worker count.
package roadnet

import (
	"fmt"
	"math"
	"sort"

	"nwade/internal/intersection"
	"nwade/internal/sim"
)

// legTolerance is how far (radians) a leg's outward heading may deviate
// from the compass direction of a neighboring region and still carry
// the connecting road. 50° admits the irregular five-leg layout's
// slanted approaches while rejecting genuinely sideways legs.
const legTolerance = 50 * math.Pi / 180

// compassDirs are the headings toward the four possible neighbors of a
// grid cell, indexed like neighborOffsets: east, north, west, south.
// Row 0 is the northern edge; rows grow southward.
var compassDirs = [4]float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}

// neighborOffsets are the (row, col) deltas matching compassDirs.
var neighborOffsets = [4][2]int{{0, 1}, {-1, 0}, {0, -1}, {1, 0}}

// Link is a directed road from one region's exit leg to an adjacent
// region's entry leg.
type Link struct {
	From, To       int // region indices
	FromLeg, ToLeg int // leg index within each region's intersection
}

// Region is one intersection's place in the network.
type Region struct {
	Index    int
	Row, Col int
	Kind     intersection.Kind
	Inter    *intersection.Intersection
	// BoundaryLegs are the legs with no link: fresh traffic arrives and
	// finished traffic leaves the network there. Sorted.
	BoundaryLegs []int
}

// Topology is the static structure of a road network: the region grid
// and the directed links joining adjacent intersections.
type Topology struct {
	Rows, Cols int
	Regions    []*Region
	Links      []Link
	// out[i][leg] is the link leaving region i through that leg.
	out []map[int]*Link
	// in[i][leg] lists the entry routes of region i starting at that
	// leg, in route-ID order (handoff destinations).
	in []map[int][]*intersection.Route
}

// BuildTopology constructs the network described by a scenario's Network
// and Intersection fields. The special layout name "mix" cycles through
// every standard layout across the regions.
func BuildTopology(cfg sim.Scenario) (*Topology, error) {
	rows, cols, err := cfg.NetworkDims()
	if err != nil {
		return nil, err
	}
	kinds, err := regionKinds(cfg.Intersection, rows*cols)
	if err != nil {
		return nil, err
	}
	t := &Topology{Rows: rows, Cols: cols}
	built := make(map[intersection.Kind]*intersection.Intersection)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			kind := kinds[i]
			inter, ok := built[kind]
			if !ok {
				inter, err = intersection.Build(kind, intersection.Config{})
				if err != nil {
					return nil, fmt.Errorf("roadnet: region %d: %w", i, err)
				}
				built[kind] = inter
			}
			t.Regions = append(t.Regions, &Region{
				Index: i, Row: r, Col: c, Kind: kind, Inter: inter,
			})
		}
	}
	t.out = make([]map[int]*Link, len(t.Regions))
	t.in = make([]map[int][]*intersection.Route, len(t.Regions))
	for i := range t.Regions {
		t.out[i] = make(map[int]*Link)
		t.in[i] = make(map[int][]*intersection.Route)
	}
	// Directed links: for each region and compass direction with a
	// neighbor, connect the best-matching legs on both sides. Both
	// directions of a road share the same leg pair, so links come in
	// opposite-direction couples.
	for _, reg := range t.Regions {
		legs := matchLegs(reg.Inter)
		for d, off := range neighborOffsets {
			nr, nc := reg.Row+off[0], reg.Col+off[1]
			if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
				continue
			}
			fromLeg := legs[d]
			if fromLeg < 0 {
				continue
			}
			j := nr*cols + nc
			// The neighbor's facing leg points the opposite way.
			toLeg := matchLegs(t.Regions[j].Inter)[(d+2)%4]
			if toLeg < 0 {
				continue
			}
			t.Links = append(t.Links, Link{From: reg.Index, To: j, FromLeg: fromLeg, ToLeg: toLeg})
		}
	}
	// Index links only after the slice is final (appends reallocate).
	for k := range t.Links {
		lk := &t.Links[k]
		t.out[lk.From][lk.FromLeg] = lk
	}
	// Boundary legs and entry-route tables.
	for _, reg := range t.Regions {
		linked := make(map[int]bool)
		for _, lk := range t.Links {
			if lk.From == reg.Index {
				linked[lk.FromLeg] = true
			}
			if lk.To == reg.Index {
				linked[lk.ToLeg] = true
			}
		}
		reg.BoundaryLegs = make([]int, 0, len(reg.Inter.LegHeadings))
		for leg := range reg.Inter.LegHeadings {
			if !linked[leg] {
				reg.BoundaryLegs = append(reg.BoundaryLegs, leg)
			}
		}
		sort.Ints(reg.BoundaryLegs)
		for _, rt := range reg.Inter.Routes {
			t.in[reg.Index][rt.From.Leg] = append(t.in[reg.Index][rt.From.Leg], rt)
		}
		for leg := range t.in[reg.Index] {
			routes := t.in[reg.Index][leg]
			sort.Slice(routes, func(a, b int) bool { return routes[a].ID < routes[b].ID })
		}
	}
	return t, nil
}

// regionKinds resolves the layout of each region: one named kind for
// all, or the full cycle under "mix".
func regionKinds(name string, n int) ([]intersection.Kind, error) {
	if name == "" {
		name = "cross4"
	}
	out := make([]intersection.Kind, n)
	if name == "mix" {
		all := intersection.Kinds()
		for i := range out {
			out[i] = all[i%len(all)]
		}
		return out, nil
	}
	kind, ok := intersection.KindByName(name)
	if !ok {
		return nil, fmt.Errorf("roadnet: unknown intersection layout %q (want one of %v or mix)",
			name, intersection.KindNameList())
	}
	for i := range out {
		out[i] = kind
	}
	return out, nil
}

// matchLegs assigns each compass direction the leg whose outward heading
// is nearest (within legTolerance), -1 when no leg qualifies. Each leg
// serves at most one direction; ties resolve to the better angular fit,
// then to the lower direction index — all deterministic.
func matchLegs(in *intersection.Intersection) [4]int {
	var out [4]int
	for d := range out {
		out[d] = -1
	}
	type cand struct {
		d, leg int
		diff   float64
	}
	var cands []cand
	for d, dir := range compassDirs {
		for leg, h := range in.LegHeadings {
			if diff := angDiff(h, dir); diff <= legTolerance {
				cands = append(cands, cand{d: d, leg: leg, diff: diff})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		//lint:ignore floateq exact bit comparison is the sort tiebreak, not an approximate-equality test
		if cands[a].diff != cands[b].diff {
			return cands[a].diff < cands[b].diff
		}
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].leg < cands[b].leg
	})
	usedLeg := make(map[int]bool)
	for _, c := range cands {
		if out[c.d] >= 0 || usedLeg[c.leg] {
			continue
		}
		out[c.d] = c.leg
		usedLeg[c.leg] = true
	}
	return out
}

// angDiff is the absolute angular distance between two headings, wrapped
// to [0, π].
func angDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// LinkFrom returns the link leaving region i through the given leg.
func (t *Topology) LinkFrom(i, leg int) (*Link, bool) {
	lk, ok := t.out[i][leg]
	return lk, ok
}

// EntryRoutes lists region i's routes entering at the given leg, in
// route-ID order.
func (t *Topology) EntryRoutes(i, leg int) []*intersection.Route {
	return t.in[i][leg]
}

// Diameter is the longest shortest-path hop count between two regions —
// the gossip TTL needed for full report coverage.
func (t *Topology) Diameter() int { return t.Rows + t.Cols - 2 }
