// Checkpoint/restore for a whole road network. The network's mutable
// state is the clock, every region's complete sim.State, the backbone
// network (in-flight beacons and reports included), the per-region
// suspect and head tables, and the cross-region counters. Everything is
// serialized in a total order — regions by index, table entries by key —
// so the same network state always encodes to the same bytes.
package roadnet

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"nwade/internal/plan"
	"nwade/internal/sim"
	"nwade/internal/vnet"
)

// SuspectSeen is one entry of a region's suspect knowledge table.
//
//lint:checkpoint-state encode=Network.Snapshot decode=Restore
type SuspectSeen struct {
	Suspect plan.VehicleID
	At      time.Duration
	Hop     int
}

// RegionTables is the roadnet-level mutable state of one region.
//
//lint:checkpoint-state encode=Network.Snapshot decode=Restore
type RegionTables struct {
	FirstSeen []SuspectSeen `json:",omitempty"` // sorted by suspect
	Heads     []HeadMsg     `json:",omitempty"` // sorted by origin region
}

// State is a complete network snapshot.
//
//lint:checkpoint-state encode=Network.Snapshot decode=Restore
type State struct {
	Now      time.Duration
	Regions  []*sim.State
	Backbone vnet.NetworkState
	Tables   []RegionTables
	Stats    Stats
}

// encodeBackbonePayload serializes a backbone message payload for the
// vnet snapshot layer.
func encodeBackbonePayload(p any) (vnet.PayloadEnvelope, error) {
	switch v := p.(type) {
	case HeadMsg:
		b, err := json.Marshal(v)
		return vnet.PayloadEnvelope{Type: "roadnet.HeadMsg", Data: b}, err
	case CrossReport:
		b, err := json.Marshal(v)
		return vnet.PayloadEnvelope{Type: "roadnet.CrossReport", Data: b}, err
	default:
		return vnet.PayloadEnvelope{}, fmt.Errorf("roadnet: unknown backbone payload %T", p)
	}
}

// decodeBackbonePayload is encodeBackbonePayload's inverse.
func decodeBackbonePayload(env vnet.PayloadEnvelope) (any, error) {
	switch env.Type {
	case "roadnet.HeadMsg":
		var v HeadMsg
		err := json.Unmarshal(env.Data, &v)
		return v, err
	case "roadnet.CrossReport":
		var v CrossReport
		err := json.Unmarshal(env.Data, &v)
		return v, err
	default:
		return nil, fmt.Errorf("roadnet: unknown backbone payload type %q", env.Type)
	}
}

// Snapshot captures the network's complete state. Call it only between
// Steps.
func (n *Network) Snapshot() (*State, error) {
	back, err := n.back.Snapshot(encodeBackbonePayload)
	if err != nil {
		return nil, fmt.Errorf("roadnet: snapshot: %w", err)
	}
	st := &State{
		Now:      n.now,
		Backbone: back,
		Stats:    n.stats,
	}
	for i, r := range n.regs {
		rs, err := r.eng.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("roadnet: snapshot region %d: %w", i, err)
		}
		st.Regions = append(st.Regions, rs)
		var t RegionTables
		for s, seen := range r.firstSeen {
			t.FirstSeen = append(t.FirstSeen, SuspectSeen{Suspect: s, At: seen.At, Hop: seen.Hop})
		}
		sort.Slice(t.FirstSeen, func(a, b int) bool { return t.FirstSeen[a].Suspect < t.FirstSeen[b].Suspect })
		for _, hm := range r.heads {
			t.Heads = append(t.Heads, hm)
		}
		sort.Slice(t.Heads, func(a, b int) bool { return t.Heads[a].Region < t.Heads[b].Region })
		st.Tables = append(st.Tables, t)
	}
	return st, nil
}

// Restore rebuilds a network from a snapshot. cfg must be the original
// run's scenario. The restored network is bit-identical to the
// snapshotted one: stepping both produces the same per-region event
// logs, backbone schedule and digests. Options apply as in New (an
// observability sink attaches to every restored region engine; signers
// are ignored because the snapshot carries the keys).
func Restore(cfg sim.Scenario, st *State, opts ...Option) (*Network, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.signers = nil // region keys come from the snapshot
	n, scens, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if len(st.Regions) != len(n.regs) {
		return nil, fmt.Errorf("roadnet: restore: snapshot has %d regions but scenario builds %d",
			len(st.Regions), len(n.regs))
	}
	if len(st.Tables) != len(n.regs) {
		return nil, fmt.Errorf("roadnet: restore: snapshot has %d region tables but scenario builds %d",
			len(st.Tables), len(n.regs))
	}
	for i, rs := range st.Regions {
		eng, err := sim.Restore(scens[i], rs, o.simOptions(i)...)
		if err != nil {
			return nil, fmt.Errorf("roadnet: restore region %d: %w", i, err)
		}
		n.regs[i].eng = eng
		for _, s := range st.Tables[i].FirstSeen {
			n.regs[i].firstSeen[s.Suspect] = Seen{At: s.At, Hop: s.Hop}
		}
		for _, hm := range st.Tables[i].Heads {
			n.regs[i].heads[hm.Region] = hm
		}
	}
	if err := n.back.RestoreState(st.Backbone, decodeBackbonePayload); err != nil {
		return nil, fmt.Errorf("roadnet: restore backbone: %w", err)
	}
	n.now = st.Now
	n.stats = st.Stats
	return n, nil
}

// Encode serializes a network state as canonical JSON for the snap
// checkpoint envelope.
func (st *State) Encode() ([]byte, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("roadnet: encode state: %w", err)
	}
	return b, nil
}

// DecodeState is Encode's inverse.
func DecodeState(b []byte) (*State, error) {
	var st State
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("roadnet: decode state: %w", err)
	}
	return &st, nil
}
