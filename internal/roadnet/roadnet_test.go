package roadnet

import (
	"testing"
	"time"

	"nwade/internal/attack"
	"nwade/internal/intersection"
	"nwade/internal/sim"
)

// netScenario is a small, fast network scenario for tests.
func netScenario(network string, seed int64) sim.Scenario {
	return sim.Scenario{
		Network:    network,
		Duration:   20 * time.Second,
		RatePerMin: 80,
		Seed:       seed,
		Attack:     attack.Benign(),
		NWADE:      true,
		KeyBits:    1024,
	}
}

// TestTopologyProperties checks the structural invariants of every
// layout on a 3x3 grid: link endpoints exist, linked legs are real legs
// of both intersections, every link's entry leg has routes (so handoffs
// always find a destination), and links come in opposite-direction
// pairs.
func TestTopologyProperties(t *testing.T) {
	layouts := append(intersection.KindNameList(), "mix")
	for _, layout := range layouts {
		t.Run(layout, func(t *testing.T) {
			topo, err := BuildTopology(sim.Scenario{Network: "grid:3x3", Intersection: layout})
			if err != nil {
				t.Fatal(err)
			}
			if len(topo.Regions) != 9 {
				t.Fatalf("got %d regions, want 9", len(topo.Regions))
			}
			type pair struct{ a, b int }
			dir := make(map[pair]int)
			for _, lk := range topo.Links {
				if lk.From < 0 || lk.From >= 9 || lk.To < 0 || lk.To >= 9 {
					t.Fatalf("link %+v endpoints out of range", lk)
				}
				from, to := topo.Regions[lk.From], topo.Regions[lk.To]
				if lk.FromLeg < 0 || lk.FromLeg >= len(from.Inter.LegHeadings) {
					t.Errorf("link %+v: FromLeg not a leg of %s", lk, from.Inter.Name)
				}
				if lk.ToLeg < 0 || lk.ToLeg >= len(to.Inter.LegHeadings) {
					t.Errorf("link %+v: ToLeg not a leg of %s", lk, to.Inter.Name)
				}
				if abs(from.Row-to.Row)+abs(from.Col-to.Col) != 1 {
					t.Errorf("link %+v joins non-adjacent regions", lk)
				}
				if len(topo.EntryRoutes(lk.To, lk.ToLeg)) == 0 {
					t.Errorf("link %+v: no entry routes at destination leg", lk)
				}
				dir[pair{lk.From, lk.To}]++
			}
			for p, c := range dir {
				if c != 1 {
					t.Errorf("regions %d->%d have %d links, want 1", p.a, p.b, c)
				}
				if dir[pair{p.b, p.a}] != 1 {
					t.Errorf("link %d->%d has no reverse", p.a, p.b)
				}
			}
			// Every region must be reachable when every layout in play
			// offers a leg for all four compass directions. A 3-leg
			// layout cannot face four neighbors, so uniform grids of it
			// are legitimately not fully connected.
			full := true
			for _, reg := range topo.Regions {
				for _, leg := range matchLegs(reg.Inter) {
					if leg < 0 {
						full = false
					}
				}
			}
			if got := reachable(topo); full && got != len(topo.Regions) {
				t.Errorf("only %d of %d regions reachable from region 0", got, len(topo.Regions))
			} else if !full {
				t.Logf("%s: partial compass coverage, %d/%d reachable", layout, got, len(topo.Regions))
			}
			// Boundary legs and linked legs partition the leg set.
			for _, reg := range topo.Regions {
				linked := 0
				for leg := range reg.Inter.LegHeadings {
					if _, ok := topo.LinkFrom(reg.Index, leg); ok {
						linked++
					}
				}
				if linked+len(reg.BoundaryLegs) != len(reg.Inter.LegHeadings) {
					t.Errorf("region %d (%s): %d linked + %d boundary != %d legs",
						reg.Index, reg.Inter.Name, linked, len(reg.BoundaryLegs), len(reg.Inter.LegHeadings))
				}
			}
		})
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// reachable counts regions reachable from region 0 over links.
func reachable(t *Topology) int {
	seen := map[int]bool{0: true}
	frontier := []int{0}
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		for _, lk := range t.Links {
			if lk.From == i && !seen[lk.To] {
				seen[lk.To] = true
				frontier = append(frontier, lk.To)
			}
		}
	}
	return len(seen)
}

// TestCorridorIsRow checks that corridor:N builds a 1xN grid.
func TestCorridorIsRow(t *testing.T) {
	topo, err := BuildTopology(sim.Scenario{Network: "corridor:4"})
	if err != nil {
		t.Fatal(err)
	}
	if topo.Rows != 1 || topo.Cols != 4 {
		t.Fatalf("corridor:4 built %dx%d", topo.Rows, topo.Cols)
	}
	if len(topo.Links) != 6 {
		t.Fatalf("corridor:4 has %d links, want 6", len(topo.Links))
	}
}

// TestHandoffConservation runs a 2x2 grid and checks vehicle-count
// conservation: every recorded exit is either a handoff or a network
// departure, and at least one vehicle demonstrably crossed between
// regions keeping its identity (an ID from another region's ID block).
func TestHandoffConservation(t *testing.T) {
	cfg := netScenario("grid:2x2", 1)
	cfg.Duration = 45 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results := n.Run()
	st := n.Stats()
	var exited, spawned int
	for _, r := range results {
		exited += r.Exited
		spawned += r.Spawned
	}
	if exited != st.Handoffs+st.BoundaryExits {
		t.Errorf("exited %d != handoffs %d + boundary exits %d", exited, st.Handoffs, st.BoundaryExits)
	}
	if st.Handoffs == 0 {
		t.Fatal("no handoffs in 45s on a 2x2 grid")
	}
	if spawned < st.Handoffs {
		t.Errorf("spawned %d < handoffs %d: handoff re-entries must count as spawns", spawned, st.Handoffs)
	}
	foreign := 0
	for i := 0; i < n.Regions(); i++ {
		lo := uint64(1 + i*regionIDStride)
		hi := lo + regionIDStride
		for _, id := range n.Engine(i).PresentVehicles() {
			if uint64(id) < lo || uint64(id) >= hi {
				foreign++
			}
		}
	}
	if foreign == 0 {
		t.Error("no region hosts a vehicle from another region's ID block; handoffs lose identity")
	}
}

// TestWorkerCountInvariance is the network determinism pin: a 2x2 grid
// stepped by 1 worker and by 4 workers must digest bit-identically.
func TestWorkerCountInvariance(t *testing.T) {
	digests := make([]string, 2)
	for i, workers := range []int{1, 4} {
		cfg := netScenario("grid:2x2", 3)
		cfg.Duration = 35 * time.Second
		cfg.Workers = workers
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		digests[i] = n.Digest()
	}
	if digests[0] != digests[1] {
		t.Errorf("digest differs across worker counts:\n  1 worker : %s\n  4 workers: %s", digests[0], digests[1])
	}
}

// TestNetworkCheckpointRoundTrip snapshots a 2x2 run mid-flight, encodes
// the state to JSON and back, restores, and checks the resumed run
// digests identically to the continuous one.
func TestNetworkCheckpointRoundTrip(t *testing.T) {
	cfg := netScenario("grid:2x2", 5)
	cfg.Duration = 40 * time.Second
	cfg.Attack = attack.Scenario{Name: "V3", MaliciousVehicles: 3, PlanViolations: 1, FalseReports: 2, AttackAt: 5 * time.Second}
	cont, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cont.Now() < 20*time.Second {
		cont.Step()
	}
	st, err := cont.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	st2, err := DecodeState(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical encoding: re-encoding the decoded state is bit-identical.
	raw2, err := st2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Error("state encoding is not canonical across a decode round trip")
	}
	res, err := Restore(cfg, st2)
	if err != nil {
		t.Fatal(err)
	}
	cont.Run()
	res.Run()
	if cont.Digest() != res.Digest() {
		t.Errorf("restored run diverged:\n  continuous: %s\n  restored  : %s", cont.Digest(), res.Digest())
	}
}

// TestReportPropagation pins the neighborhood-watch escalation across a
// corridor: the attack region confirms a suspect, the cross report
// travels hop by hop, and with AdvisoryReports at the global quorum the
// remote regions' vehicles treat it as a confirmed global threat.
func TestReportPropagation(t *testing.T) {
	cfg := netScenario("corridor:3", 7)
	cfg.Duration = 40 * time.Second
	cfg.Attack = attack.Scenario{Name: "V3", MaliciousVehicles: 3, PlanViolations: 1, FalseReports: 2, AttackAt: 10 * time.Second}
	cfg.AttackRegion = 0
	cfg.AdvisoryReports = 3 // DefaultVehicleConfig().GlobalQuorum
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	st := n.Stats()
	if st.Reports == 0 {
		t.Fatal("attack region never originated a cross report")
	}
	// Find a suspect the attack region reported and follow it down the
	// corridor: hop distance must grow with region index and arrival
	// times must be ordered.
	var suspect bool
	for s, seen0 := range n.regs[0].firstSeen {
		if seen0.Hop != 0 {
			continue
		}
		suspect = true
		prevAt := seen0.At
		for i := 1; i < n.Regions(); i++ {
			seen, ok := n.FirstSeen(i, s)
			if !ok {
				t.Errorf("region %d never learned of suspect %v", i, s)
				continue
			}
			if seen.Hop != i {
				t.Errorf("region %d learned of %v over %d hops, want %d", i, s, seen.Hop, i)
			}
			if seen.At < prevAt {
				t.Errorf("region %d learned of %v at %v, before region %d's %v", i, s, seen.At, i-1, prevAt)
			}
			prevAt = seen.At
		}
	}
	if !suspect {
		t.Fatal("attack region has no hop-0 suspect entry")
	}
	if st.Advisories == 0 {
		t.Error("no advisory reports injected downstream")
	}
	if st.HeadBeacons == 0 || st.HeadMismatches != 0 {
		t.Errorf("head exchange: %d beacons, %d mismatches (want >0, 0)", st.HeadBeacons, st.HeadMismatches)
	}
}

// TestDigestStability pins that the digest covers the cross-region
// counters: two different seeds must not digest equal.
func TestDigestStability(t *testing.T) {
	var prev string
	for seed := int64(11); seed <= 12; seed++ {
		n, err := New(netScenario("grid:2x2", seed))
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		d := n.Digest()
		if d == prev {
			t.Errorf("seeds %d and %d digest equal: %s", seed-1, seed, d)
		}
		prev = d
	}
}

// TestRejectsSingleIntersection pins the API boundary with sim.New.
func TestRejectsSingleIntersection(t *testing.T) {
	if _, err := New(sim.Scenario{}); err == nil {
		t.Fatal("roadnet.New accepted a single-intersection scenario")
	}
	if _, err := New(sim.Scenario{Network: "grid:0x9"}); err == nil {
		t.Fatal("roadnet.New accepted a degenerate grid")
	}
	if _, err := New(sim.Scenario{Network: "blob:3"}); err == nil {
		t.Fatal("roadnet.New accepted an unknown topology")
	}
	cfg := netScenario("grid:2x2", 1)
	cfg.AttackRegion = 4
	if _, err := New(cfg); err == nil {
		t.Fatal("roadnet.New accepted an out-of-range attack region")
	}
}

// TestNoGatewayVehicles checks the synthetic advisory reporter IDs never
// materialize as physical vehicles in any region.
func TestNoGatewayVehicles(t *testing.T) {
	cfg := netScenario("grid:2x2", 21)
	cfg.Attack, _ = attack.ByName("V3", 5*time.Second)
	cfg.Duration = 15 * time.Second
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	for i := 0; i < n.Regions(); i++ {
		for _, id := range n.Engine(i).PresentVehicles() {
			if uint64(id) >= gatewayIDBase {
				t.Fatalf("region %d hosts a gateway pseudo-ID %v", i, id)
			}
		}
	}
}
