package roadnet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nwade/internal/attack"
	"nwade/internal/chain"
	"nwade/internal/metrics"
	"nwade/internal/nwade"
	"nwade/internal/obs"
	"nwade/internal/plan"
	"nwade/internal/sim"
	"nwade/internal/traffic"
	"nwade/internal/units"
	"nwade/internal/vnet"
)

// regionIDStride separates the vehicle-ID spaces of adjacent regions:
// region i's generator starts at 1 + i<<20, so IDs stay globally unique
// up to a million vehicles per region and region 0 reproduces the
// classic single-intersection stream bit for bit.
const regionIDStride = 1 << 20

// gatewayIDBase is where the synthetic reporter IDs used for advisory
// global reports live: far above any real vehicle ID, encoding the
// origin region and the advisory index so every advisory has a distinct
// reporter (the vehicle cores count distinct reporters toward the
// global quorum).
const gatewayIDBase = uint64(1) << 40

// backboneSeedOffset separates the backbone's RNG stream from every
// per-region stream (regions use Seed + 1000*i, engines derive +1/+2).
const backboneSeedOffset = 999983

// KindHeadBeacon and KindCrossReport are the backbone message kinds.
const (
	KindHeadBeacon  = "head-beacon"
	KindCrossReport = "cross-report"
)

// Backbone message sizes (bytes, for load stats): a head beacon is a
// sequence number plus a hash; a cross report is a compact suspect
// descriptor.
const (
	sizeHeadBeacon  = 48
	sizeCrossReport = 64
)

// HeadMsg is a chain-head beacon: region Region advertises that its
// plan chain's head block is Seq with the given hash. Neighbors keep
// the latest per origin and flag any same-Seq hash disagreement — the
// cross-intersection consistency check.
type HeadMsg struct {
	Region int
	Seq    uint64
	Hash   string
	At     time.Duration
}

// CrossReport is a gossiped cross-intersection attack report: region
// Origin confirmed Suspect at time At, and this copy has traversed Hop
// links. Receivers translate it into advisory global reports on their
// local VANET and relay it while Hop is within the TTL.
type CrossReport struct {
	Origin  int
	Suspect plan.VehicleID
	Reason  nwade.GlobalReason
	At      time.Duration
	Hop     int
}

// Seen records when and via how many hops a region first learned of a
// suspect (hop 0 = its own IM confirmed it).
type Seen struct {
	At  time.Duration
	Hop int
}

// Stats counts the cross-region traffic of a network run. All fields
// are deterministic per scenario.
type Stats struct {
	// Handoffs is the number of vehicles carried across links.
	Handoffs int
	// BoundaryExits is the number of vehicles that left the network.
	BoundaryExits int
	// Reports is the number of distinct (origin, suspect) cross reports
	// originated.
	Reports int
	// ReportRelays counts gossip transmissions (originations included).
	ReportRelays int
	// Advisories counts advisory global reports injected into regional
	// VANETs on behalf of remote IMs.
	Advisories int
	// HeadBeacons counts chain-head beacons sent on the backbone.
	HeadBeacons int
	// HeadMismatches counts same-sequence hash disagreements observed by
	// receivers — zero in every honest run.
	HeadMismatches int
}

// region is one intersection's runtime state inside the network.
//
//lint:checkpoint-state encode=Network.Snapshot decode=Restore derived=idx,node,wall
type region struct {
	idx  int
	eng  *sim.Engine
	node vnet.NodeID
	// firstSeen is the suspect knowledge table: every suspect this
	// region knows of, with first-learned time and hop distance. Keys
	// double as the gossip dedup set.
	firstSeen map[plan.VehicleID]Seen
	// heads is the latest chain-head beacon per origin region.
	heads map[int]HeadMsg
	// wall accumulates this region's Step wall time (imbalance stats
	// only — never fed back into the simulation).
	wall time.Duration
}

// Network is a multi-intersection road-network simulation.
//
//lint:checkpoint-state encode=Network.Snapshot decode=Restore
//lint:checkpoint-state derived=cfg,topo,byNode,workers,ttl,pollBuf
type Network struct {
	cfg     sim.Scenario
	topo    *Topology
	regs    []*region
	byNode  map[vnet.NodeID]int
	back    *vnet.Network
	now     time.Duration
	workers int
	ttl     int
	stats   Stats

	pollBuf []vnet.Delivery
}

// Option configures network construction.
type Option func(*options)

type options struct {
	signers []*chain.Signer
	obs     *obs.Sink
}

// WithSigners supplies pre-generated per-region signing keys (index =
// region index). Key generation is the expensive part of construction,
// and the replay bisector needs a rebuilt network whose regions carry
// the checkpointed keys so state digests compare bit for bit.
func WithSigners(ss []*chain.Signer) Option {
	return func(o *options) { o.signers = ss }
}

// WithObs attaches an observability sink shared by every region engine.
// The sink is concurrency-safe, so parallel region ticks may interleave
// their trace records; digests are observability-blind either way.
func WithObs(s *obs.Sink) Option {
	return func(o *options) { o.obs = s }
}

// New builds the road network a scenario describes. The scenario must
// have Network set ("grid:RxC" or "corridor:N"); sim.New handles the
// single-intersection case.
func New(cfg sim.Scenario, opts ...Option) (*Network, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n, scens, err := build(cfg)
	if err != nil {
		return nil, err
	}
	if o.signers != nil && len(o.signers) != len(scens) {
		return nil, fmt.Errorf("roadnet: %d signers for %d regions", len(o.signers), len(scens))
	}
	for i, rc := range scens {
		simOpts := o.simOptions(i)
		eng, err := sim.New(rc, simOpts...)
		if err != nil {
			return nil, fmt.Errorf("roadnet: region %d: %w", i, err)
		}
		n.regs[i].eng = eng
	}
	return n, nil
}

// simOptions translates the network options into region i's engine
// options.
func (o *options) simOptions(i int) []sim.Option {
	var simOpts []sim.Option
	if o.signers != nil {
		simOpts = append(simOpts, sim.WithSigner(o.signers[i]))
	}
	if o.obs != nil {
		simOpts = append(simOpts, sim.WithObs(o.obs))
	}
	return simOpts
}

// build constructs everything but the engines: topology, backbone, and
// the per-region scenarios. Shared by New and Restore so both derive
// identical wiring.
func build(cfg sim.Scenario) (*Network, []sim.Scenario, error) {
	if !cfg.IsNetwork() {
		return nil, nil, fmt.Errorf("roadnet: scenario is a single intersection; build it with sim.New")
	}
	cfg = cfg.Normalize()
	topo, err := BuildTopology(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.AttackRegion < 0 || cfg.AttackRegion >= len(topo.Regions) {
		return nil, nil, fmt.Errorf("roadnet: attack region %d out of range [0,%d)", cfg.AttackRegion, len(topo.Regions))
	}
	ttl := cfg.ReportTTL
	if ttl <= 0 {
		ttl = topo.Diameter()
	}
	n := &Network{
		cfg:     cfg,
		topo:    topo,
		byNode:  make(map[vnet.NodeID]int, len(topo.Regions)),
		back:    vnet.New(vnet.Config{Latency: cfg.Net.Latency}, cfg.Seed+backboneSeedOffset, nil),
		workers: cfg.Workers,
		ttl:     ttl,
	}
	scens := make([]sim.Scenario, len(topo.Regions))
	for i, reg := range topo.Regions {
		r := &region{
			idx:       i,
			node:      vnet.NodeID(fmt.Sprintf("im%d", i)),
			firstSeen: make(map[plan.VehicleID]Seen),
			heads:     make(map[int]HeadMsg),
		}
		n.regs = append(n.regs, r)
		n.byNode[r.node] = i
		n.back.Register(r.node)
		scens[i] = regionScenario(cfg, reg)
	}
	return n, scens, nil
}

// regionScenario derives one region's engine scenario from the network
// scenario: its own layout, seed, ID space, boundary-only arrivals, and
// the attack only in the designated region.
func regionScenario(base sim.Scenario, reg *Region) sim.Scenario {
	rc := base
	rc.Network = ""
	rc.Intersection = ""
	rc.Inter = reg.Inter
	rc.Scheduler = nil // per-region instance, built from rc.Sched
	rc.Seed = base.Seed + 1000*int64(reg.Index)
	rc.Workers = 1 // parallelism lives at the region level
	if reg.Index != base.AttackRegion {
		rc.Attack = attack.Benign()
	}
	// Fresh arrivals only on network-boundary legs, at a rate scaled to
	// the boundary share so per-leg intensity matches the single-
	// intersection baseline; interior regions are fed purely by handoff.
	legs := len(reg.Inter.LegHeadings)
	rc.RatePerMin = base.RatePerMin * float64(len(reg.BoundaryLegs)) / float64(legs)
	rc.Region = sim.RegionConfig{
		FirstID:      1 + uint64(reg.Index)*regionIDStride,
		Legs:         append([]int{}, reg.BoundaryLegs...),
		CaptureExits: true,
	}
	return rc
}

// gatewayReporter is the synthetic reporter identity the k-th advisory
// from origin region uses on a local VANET.
func gatewayReporter(origin, k int) plan.VehicleID {
	return plan.VehicleID(gatewayIDBase + uint64(origin)*256 + uint64(k))
}

// Topology exposes the static network structure.
func (n *Network) Topology() *Topology { return n.topo }

// Regions is the number of regions.
func (n *Network) Regions() int { return len(n.regs) }

// Engine returns region i's simulation engine.
func (n *Network) Engine(i int) *sim.Engine { return n.regs[i].eng }

// Now is the network's simulated time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns the cross-region counters.
func (n *Network) Stats() Stats { return n.stats }

// BackboneStats returns the backbone network's load statistics.
func (n *Network) BackboneStats() vnet.Stats { return n.back.Stats() }

// FirstSeen reports when region i first learned of a suspect and over
// how many hops; ok=false if it never has.
func (n *Network) FirstSeen(i int, suspect plan.VehicleID) (Seen, bool) {
	s, ok := n.regs[i].firstSeen[suspect]
	return s, ok
}

// SuspectsSeen returns region i's complete suspect knowledge table,
// sorted by suspect ID. Unlike the IM's live suspect set, entries
// persist after the suspect leaves, so post-run analysis sees every
// alert the region ever handled.
func (n *Network) SuspectsSeen(i int) []SuspectSeen {
	r := n.regs[i]
	out := make([]SuspectSeen, 0, len(r.firstSeen))
	for s, seen := range r.firstSeen {
		out = append(out, SuspectSeen{Suspect: s, At: seen.At, Hop: seen.Hop})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Suspect < out[b].Suspect })
	return out
}

// RegionWall returns the accumulated per-region Step wall time — the
// load-imbalance signal for the speedup experiment. Wall-clock readings
// never influence simulation state.
func (n *Network) RegionWall() []time.Duration {
	out := make([]time.Duration, len(n.regs))
	for i, r := range n.regs {
		out[i] = r.wall
	}
	return out
}

// Step advances every region by one tick (in parallel when the scenario
// allows multiple workers), then applies all cross-region effects
// sequentially in region-index order: backbone deliveries, vehicle
// handoffs, and — on the exchange cadence — suspect gossip and
// chain-head beacons.
func (n *Network) Step() {
	n.stepRegions()
	n.now += n.cfg.Step
	n.deliverBackbone()
	n.handoffs()
	if n.beaconDue() {
		n.beacon()
	}
}

// Run drives the network to the scenario duration and returns the
// per-region results.
func (n *Network) Run() []metrics.RunResult {
	for n.now < n.cfg.Duration {
		n.Step()
	}
	return n.Results()
}

// Results summarises every region's run so far.
func (n *Network) Results() []metrics.RunResult {
	out := make([]metrics.RunResult, len(n.regs))
	for i, r := range n.regs {
		out[i] = r.eng.Result()
	}
	return out
}

// wallNow reads the host clock for the per-region imbalance statistic.
// It never feeds simulation state; the nodeterminism analyzer sanctions
// exactly this function (like obs.wallNow).
func wallNow() time.Time { return time.Now() }

// stepRegions advances all regions one tick. Regions share no mutable
// state, so any schedule of the pool produces the same result; the wall
// clock is read only for the imbalance statistic.
func (n *Network) stepRegions() {
	w := n.workers
	if w > len(n.regs) {
		w = len(n.regs)
	}
	if w <= 1 {
		for _, r := range n.regs {
			t0 := wallNow()
			r.eng.Step()
			r.wall += wallNow().Sub(t0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		//lint:parallel-root per-region step worker pool
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.regs) {
					return
				}
				r := n.regs[i]
				t0 := wallNow()
				r.eng.Step()
				r.wall += wallNow().Sub(t0)
			}
		}()
	}
	wg.Wait()
}

// deliverBackbone drains backbone messages due now, in deterministic
// (deliver time, sequence) order.
func (n *Network) deliverBackbone() {
	n.pollBuf = n.back.PollInto(n.now, n.pollBuf[:0])
	for _, d := range n.pollBuf {
		i, ok := n.byNode[d.To]
		if !ok {
			continue
		}
		switch msg := d.Msg.Payload.(type) {
		case HeadMsg:
			n.handleHead(i, msg)
		case CrossReport:
			n.handleReport(i, msg)
		}
	}
}

// handleHead folds a chain-head beacon into region i's view and flags
// same-sequence hash disagreements.
func (n *Network) handleHead(i int, hm HeadMsg) {
	r := n.regs[i]
	if prev, ok := r.heads[hm.Region]; ok {
		if hm.Seq == prev.Seq && hm.Hash != prev.Hash {
			n.stats.HeadMismatches++
		}
		if hm.Seq < prev.Seq {
			return
		}
	}
	r.heads[hm.Region] = hm
}

// Heads returns region i's latest chain-head view, sorted by origin.
func (n *Network) Heads(i int) []HeadMsg {
	r := n.regs[i]
	out := make([]HeadMsg, 0, len(r.heads))
	for _, hm := range r.heads {
		out = append(out, hm)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Region < out[b].Region })
	return out
}

// handleReport processes a cross report arriving at region i: first
// sighting injects advisories into the local VANET and relays onward.
func (n *Network) handleReport(i int, cr CrossReport) {
	r := n.regs[i]
	if _, ok := r.firstSeen[cr.Suspect]; ok {
		return
	}
	r.firstSeen[cr.Suspect] = Seen{At: n.now, Hop: cr.Hop}
	for k := 0; k < n.cfg.AdvisoryReports; k++ {
		r.eng.BroadcastGlobal(nwade.GlobalReport{
			Reporter: gatewayReporter(cr.Origin, k),
			Reason:   cr.Reason,
			Suspect:  cr.Suspect,
			At:       n.now,
		})
		n.stats.Advisories++
	}
	if cr.Hop < n.ttl {
		cr.Hop++
		n.relay(i, cr)
	}
}

// relay gossips a cross report to every neighbor of region i.
func (n *Network) relay(i int, cr CrossReport) {
	for _, j := range n.neighbors(i) {
		// The backbone is fully registered and lossless; a send can only
		// fail for an unregistered node, which would be a construction
		// bug caught by the property tests.
		if _, err := n.back.Unicast(n.now, n.regs[i].node, n.regs[j].node, KindCrossReport, cr, sizeCrossReport); err != nil {
			panic(fmt.Sprintf("roadnet: relay to unregistered region %d: %v", j, err))
		}
		n.stats.ReportRelays++
	}
}

// neighbors lists the regions adjacent to i (distinct link targets, in
// ascending order).
func (n *Network) neighbors(i int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, lk := range n.topo.Links {
		if lk.From == i && !seen[lk.To] {
			seen[lk.To] = true
			out = append(out, lk.To)
		}
	}
	sort.Ints(out)
	return out
}

// handoffs drains every region's completed crossings and re-injects the
// linked ones into the destination region after the link delay.
func (n *Network) handoffs() {
	for i, r := range n.regs {
		for _, x := range r.eng.TakeExits() {
			lk, ok := n.topo.LinkFrom(i, x.ToLeg)
			if !ok {
				n.stats.BoundaryExits++
				continue
			}
			routes := n.topo.EntryRoutes(lk.To, lk.ToLeg)
			if len(routes) == 0 {
				// A linked entry leg with no routes would be a layout
				// bug; treat the vehicle as leaving the network.
				n.stats.BoundaryExits++
				continue
			}
			rt := routes[int(uint64(x.Vehicle)%uint64(len(routes)))]
			speed := x.Speed
			if speed > units.SpeedLimit {
				speed = units.SpeedLimit
			}
			if speed < 5 {
				speed = 5
			}
			n.regs[lk.To].eng.InjectArrival(traffic.Arrival{
				At:      n.now + n.cfg.LinkDelay,
				Vehicle: x.Vehicle,
				Route:   rt,
				Speed:   speed,
				Char:    x.Char,
				Handoff: true,
				Legacy:  x.Legacy,
			})
			n.stats.Handoffs++
		}
	}
}

// beaconDue reports whether this tick crossed an exchange boundary.
// Pure function of the clock, so restore needs no extra state.
func (n *Network) beaconDue() bool {
	every := n.cfg.ExchangeEvery
	if every <= 0 {
		return false
	}
	return n.now/every > (n.now-n.cfg.Step)/every
}

// beacon runs one exchange round: every region (in index order)
// originates cross reports for newly confirmed suspects and beacons its
// chain head to its neighbors.
func (n *Network) beacon() {
	for i, r := range n.regs {
		for _, s := range r.eng.IM().Suspects() {
			if _, ok := r.firstSeen[s]; ok {
				continue
			}
			r.firstSeen[s] = Seen{At: n.now, Hop: 0}
			n.stats.Reports++
			n.relay(i, CrossReport{
				Origin:  i,
				Suspect: s,
				Reason:  nwade.ReasonAbnormalVehicle,
				At:      n.now,
				Hop:     1,
			})
		}
		if h := r.eng.IM().Head(); h != nil {
			hash := h.HashBlock()
			hm := HeadMsg{Region: i, Seq: h.Seq, Hash: hex.EncodeToString(hash[:]), At: n.now}
			for _, j := range n.neighbors(i) {
				if _, err := n.back.Unicast(n.now, r.node, n.regs[j].node, KindHeadBeacon, hm, sizeHeadBeacon); err != nil {
					panic(fmt.Sprintf("roadnet: beacon to unregistered region %d: %v", j, err))
				}
				n.stats.HeadBeacons++
			}
		}
	}
}

// Digest fingerprints the whole network run: every region's event-log
// digest plus the cross-region counters and backbone load. Two runs of
// the same scenario digest equal regardless of worker count; any
// behavioral divergence in any region changes it.
func (n *Network) Digest() string {
	h := sha256.New()
	for i, r := range n.regs {
		fmt.Fprintf(h, "region%d=%s\n", i, metrics.Digest(r.eng.Result()))
	}
	st := n.stats
	bb := n.back.Stats()
	fmt.Fprintf(h, "now=%d handoffs=%d boundary=%d reports=%d relays=%d advisories=%d beacons=%d mismatches=%d backbone=%d/%d\n",
		n.now, st.Handoffs, st.BoundaryExits, st.Reports, st.ReportRelays,
		st.Advisories, st.HeadBeacons, st.HeadMismatches, bb.Delivered, bb.TotalPackets())
	return hex.EncodeToString(h.Sum(nil))
}

// RegionDigests returns each region's event-log digest.
func (n *Network) RegionDigests() []string {
	out := make([]string, len(n.regs))
	for i, r := range n.regs {
		out[i] = metrics.Digest(r.eng.Result())
	}
	return out
}
