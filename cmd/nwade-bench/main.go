// Command nwade-bench regenerates the NWADE paper's tables and figures
// (Table II, Fig. 4 through Fig. 8, the Eq. 2/Eq. 3 analytic curves, and
// this repo's extension experiments) from the simulator, printing each as
// a text table. Experiments come from the eval registry: -list shows
// them, -exp selects one by name, by group, or "all".
//
// Examples:
//
//	nwade-bench -list
//	nwade-bench -exp all -rounds 10            # full evaluation (slow)
//	nwade-bench -exp fig4 -rounds 5 -workers 8
//	nwade-bench -exp table2 -rounds 3 -duration 50s
//	nwade-bench -exp fig4 -faults burst15 -retrans
//	nwade-bench -exp speedup -json bench.json  # parallel-vs-sequential
//	nwade-bench -exp fig4 -quick -obs          # aggregate protocol counters
//	nwade-bench -exp fig4 -quick -pprof cpu.pb # CPU profile of the sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"nwade/internal/benchfmt"
	"nwade/internal/eval"
	"nwade/internal/obs"
	"nwade/internal/vnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp       = fs.String("exp", "all", "experiment name, group, or \"all\" (see -list)")
		rounds    = fs.Int("rounds", 10, "rounds per attack setting (paper: 10)")
		duration  = fs.Duration("duration", 60*time.Second, "simulated span of each round")
		density   = fs.Float64("density", 80, "default vehicle density (veh/min)")
		seed      = fs.Int64("seed", 1, "base random seed")
		quick     = fs.Bool("quick", false, "reduced sweeps for a fast smoke run")
		workers   = fs.Int("workers", 0, "concurrent simulation rounds (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		faults    = fs.String("faults", "", "network fault profile injected into every round ("+strings.Join(vnet.FaultProfileNames(), ", ")+")")
		retrans   = fs.Bool("retrans", false, "enable the protocol retransmission layer (pair with -faults)")
		list      = fs.Bool("list", false, "list registered experiments and exit")
		jsonOut   = fs.String("json", "", "write per-experiment wall times to this JSON file")
		traceOut  = fs.String("trace", "", "write a JSONL protocol-event trace to this file (forces -workers 1)")
		obsRep    = fs.Bool("obs", false, "print aggregated observability counters after the run")
		pprofOut  = fs.String("pprof", "", "write a CPU profile to this file")
		resumeDir = fs.String("resume-dir", "", "persist finished simulation rounds to this directory and resume interrupted sweeps per cell")
		drain     = fs.Bool("drain", false, "cooperative drain: share -resume-dir with other concurrent workers, each cell runs exactly once across the fleet")
		workerID  = fs.String("worker-id", "", "worker identity recorded in -drain lease files (default w<pid>)")
		leaseTTL  = fs.Duration("lease-ttl", 10*time.Minute, "after this long without completing, a -drain worker's cell is presumed abandoned and reclaimed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		listExperiments(out)
		return nil
	}

	fc, err := vnet.ParseFaultProfile(*faults)
	if err != nil {
		return err
	}
	if *traceOut != "" && *workers != 1 {
		// Concurrent rounds would interleave their trace records; the
		// counters are synchronized but the JSONL stream is per-run.
		fmt.Fprintln(out, "note: -trace forces -workers 1")
		*workers = 1
	}
	var sink *obs.Sink
	var traceFile *os.File
	if *traceOut != "" || *obsRep || *pprofOut != "" {
		o := obs.Options{Profile: *pprofOut != ""}
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			o.Trace = traceFile
		}
		sink = obs.New(o)
		sink.WriteMeta(obs.Meta{Tool: "nwade-bench", Experiment: *exp, Seed: *seed})
	}
	if *pprofOut != "" {
		pf, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := eval.Config{
		Rounds:     *rounds,
		Density:    *density,
		Duration:   *duration,
		BaseSeed:   *seed,
		Workers:    *workers,
		Faults:     fc,
		Resilience: *retrans,
		Obs:        sink,
	}
	if *drain && *resumeDir == "" {
		return fmt.Errorf("-drain needs -resume-dir (the shared sweep directory)")
	}
	var queue *eval.DirQueue
	if *resumeDir != "" {
		// Single-worker resume and multi-worker drain are the same store;
		// -drain only adds an identity and a lease TTL worth naming.
		queue, err = eval.NewDirQueue(*resumeDir, eval.QueueOptions{
			Owner:    *workerID,
			LeaseTTL: *leaseTTL,
		})
		if err != nil {
			return err
		}
		cfg.Store = queue
	}
	if *quick {
		cfg.Rounds = 2
		cfg.Densities = []float64{40, 80}
		cfg.Settings = []string{"V1", "V5", "IM", "IM_V5"}
	}

	selected, err := selectExperiments(*exp)
	if err != nil {
		return err
	}

	report := benchfmt.Report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    *workers,
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for _, g := range selected {
		start := time.Now()
		res, err := g.Run(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Fprintln(out, res)
		fmt.Fprintf(out, "[%s: %.0f ms wall]\n\n", g.Name, ms(wall))
		if sr, ok := res.(*eval.SpeedupResult); ok {
			report.Experiments = append(report.Experiments,
				benchfmt.Timing{Experiment: "speedup-sequential", WallMS: ms(sr.Sequential), Rounds: sr.Rounds, Workers: 1},
				benchfmt.Timing{Experiment: "speedup-parallel", WallMS: ms(sr.Parallel), Rounds: sr.Rounds,
					Workers: sr.Workers, RequestedWorkers: sr.RequestedWorkers, Speedup: sr.Ratio()},
			)
			if sr.Network != "" {
				report.Experiments = append(report.Experiments, benchfmt.Timing{
					Experiment: "speedup-network", WallMS: ms(sr.NetworkWall), Rounds: 1,
					Workers: sr.Workers, Imbalance: sr.Imbalance(),
				})
			}
			continue
		}
		if ar, ok := res.(*eval.TickAllocResult); ok {
			report.Experiments = append(report.Experiments, benchfmt.Timing{
				Experiment: g.Name, WallMS: ms(wall), Rounds: 1, Workers: 1,
				AllocTicks: ar.Ticks, AllocsPerTick: ar.AllocsPerTick, BytesPerTick: ar.BytesPerTick,
			})
			continue
		}
		report.Experiments = append(report.Experiments, benchfmt.Timing{
			Experiment: g.Name, WallMS: ms(wall), Rounds: cfg.Rounds, Workers: *workers,
		})
	}

	if *drain {
		// Bracket-prefixed like the wall-time lines, so output
		// comparisons across worker fleets can filter both the same way.
		st := queue.Stats()
		fmt.Fprintf(out, "[drain %s: executed %d, loaded %d, reclaimed %d, conflicts %d, quarantined %d]\n",
			queue.Owner(), st.Executed, st.Loaded, st.Reclaimed, st.Conflicts, st.Quarantined)
	}

	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		if *obsRep {
			sink.WriteReport(out)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonOut)
	}
	return nil
}

// selectExperiments resolves -exp against the registry: everything, one
// group, or one experiment.
func selectExperiments(exp string) ([]eval.Generator, error) {
	if exp == "all" {
		return eval.All(), nil
	}
	var group []eval.Generator
	for _, g := range eval.All() {
		if g.Meta.Group == exp {
			group = append(group, g)
		}
	}
	if len(group) > 0 {
		return group, nil
	}
	if g, ok := eval.Lookup(exp); ok {
		return []eval.Generator{g}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q (see -list)", exp)
}

// listExperiments prints the registry in run order.
func listExperiments(out io.Writer) {
	fmt.Fprintln(out, "registered experiments (run order):")
	for _, g := range eval.All() {
		group := ""
		if g.Meta.Group != "" {
			group = " [" + g.Meta.Group + "]"
		}
		fmt.Fprintf(out, "  %-22s %s%s\n", g.Name, g.Meta.Desc, group)
	}
	if groups := eval.Groups(); len(groups) > 0 {
		fmt.Fprintf(out, "groups: %s\n", strings.Join(groups, ", "))
	}
}
