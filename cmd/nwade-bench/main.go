// Command nwade-bench regenerates the NWADE paper's tables and figures
// (Table II, Fig. 4 through Fig. 8, and the Eq. 2/Eq. 3 analytic curves)
// from the simulator, printing each as a text table.
//
// Examples:
//
//	nwade-bench -exp all -rounds 10            # full evaluation (slow)
//	nwade-bench -exp fig4 -rounds 5
//	nwade-bench -exp table2 -rounds 3 -duration 50s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nwade/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: table2, fig4, fig5, fig6, fig7, fig8, eq2, eq3, mixed, ablations, all")
		rounds   = flag.Int("rounds", 10, "rounds per attack setting (paper: 10)")
		duration = flag.Duration("duration", 60*time.Second, "simulated span of each round")
		density  = flag.Float64("density", 80, "default vehicle density (veh/min)")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
	)
	flag.Parse()

	cfg := eval.Config{
		Rounds:   *rounds,
		Density:  *density,
		Duration: *duration,
		BaseSeed: *seed,
	}
	densities := []float64(nil)
	settings := []string(nil)
	if *quick {
		cfg.Rounds = 2
		densities = []float64{40, 80}
		settings = []string{"V1", "V5", "IM", "IM_V5"}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table2") {
		ran = true
		res, err := eval.TableII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("fig4") {
		ran = true
		res, err := eval.Fig4(cfg, settings, densities)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("fig5") {
		ran = true
		res, err := eval.Fig5(cfg, densities)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("fig6") {
		ran = true
		res, err := eval.Fig6(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("fig7") {
		ran = true
		res, err := eval.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("fig8") {
		ran = true
		fig8cfg := cfg
		if fig8cfg.Duration < 90*time.Second {
			fig8cfg.Duration = 90 * time.Second
		}
		res, err := eval.Fig8(fig8cfg, nil, densities)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("eq2") {
		ran = true
		fmt.Println(eval.Eq2(0.1, 5, 12))
	}
	if want("eq3") {
		ran = true
		fmt.Println(eval.Eq3(0.001, 0.1, 15))
	}
	if want("mixed") {
		ran = true
		mixCfg := cfg
		if mixCfg.Duration < 90*time.Second {
			mixCfg.Duration = 90 * time.Second
		}
		res, err := eval.MixedTraffic(mixCfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if want("ablations") {
		ran = true
		abCfg := cfg
		if abCfg.Duration < 90*time.Second {
			abCfg.Duration = 90 * time.Second
		}
		schedRes, err := eval.SchedulerAblation(abCfg)
		if err != nil {
			return err
		}
		fmt.Println(schedRes)
		senseRes, err := eval.SensingSweep(abCfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(senseRes)
		dcRes, err := eval.DoubleCheckAblation(cfg)
		if err != nil {
			return err
		}
		fmt.Println(dcRes)
		lossRes, err := eval.PacketLoss(abCfg, nil)
		if err != nil {
			return err
		}
		fmt.Println(lossRes)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
