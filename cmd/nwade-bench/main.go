// Command nwade-bench regenerates the NWADE paper's tables and figures
// (Table II, Fig. 4 through Fig. 8, and the Eq. 2/Eq. 3 analytic curves)
// from the simulator, printing each as a text table.
//
// Examples:
//
//	nwade-bench -exp all -rounds 10            # full evaluation (slow)
//	nwade-bench -exp fig4 -rounds 5 -workers 8
//	nwade-bench -exp table2 -rounds 3 -duration 50s
//	nwade-bench -exp speedup -json bench.json  # parallel-vs-sequential
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"nwade/internal/eval"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-bench:", err)
		os.Exit(1)
	}
}

// expTiming is one experiment's machine-readable wall-time record.
type expTiming struct {
	Experiment string  `json:"experiment"`
	WallMS     float64 `json:"wall_ms"`
	Rounds     int     `json:"rounds"`
	Workers    int     `json:"workers"`
	// Speedup is parallel-over-sequential wall time, only set by the
	// "speedup" experiment.
	Speedup float64 `json:"speedup,omitempty"`
}

// benchReport is what -json writes: enough machine context to compare
// runs across hosts.
type benchReport struct {
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"numcpu"`
	Workers     int         `json:"workers"`
	Experiments []expTiming `json:"experiments"`
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: table2, fig4, fig5, fig6, fig7, fig8, eq2, eq3, mixed, ablations, speedup, all")
		rounds   = flag.Int("rounds", 10, "rounds per attack setting (paper: 10)")
		duration = flag.Duration("duration", 60*time.Second, "simulated span of each round")
		density  = flag.Float64("density", 80, "default vehicle density (veh/min)")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		workers  = flag.Int("workers", 0, "concurrent simulation rounds (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		jsonOut  = flag.String("json", "", "write per-experiment wall times to this JSON file")
	)
	flag.Parse()

	cfg := eval.Config{
		Rounds:   *rounds,
		Density:  *density,
		Duration: *duration,
		BaseSeed: *seed,
		Workers:  *workers,
	}
	densities := []float64(nil)
	settings := []string(nil)
	if *quick {
		cfg.Rounds = 2
		densities = []float64{40, 80}
		settings = []string{"V1", "V5", "IM", "IM_V5"}
	}

	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    *workers,
	}
	// timed runs one experiment, prints its result, and records wall time.
	timed := func(name string, rounds int, f func() (fmt.Stringer, error)) error {
		start := time.Now()
		res, err := f()
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println(res)
		fmt.Printf("[%s: %.0f ms wall]\n\n", name, float64(wall.Microseconds())/1000)
		report.Experiments = append(report.Experiments, expTiming{
			Experiment: name, WallMS: float64(wall.Microseconds()) / 1000,
			Rounds: rounds, Workers: *workers,
		})
		return nil
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table2") {
		ran = true
		if err := timed("table2", cfg.Rounds, func() (fmt.Stringer, error) { return eval.TableII(cfg) }); err != nil {
			return err
		}
	}
	if want("fig4") {
		ran = true
		if err := timed("fig4", cfg.Rounds, func() (fmt.Stringer, error) { return eval.Fig4(cfg, settings, densities) }); err != nil {
			return err
		}
	}
	if want("fig5") {
		ran = true
		if err := timed("fig5", cfg.Rounds, func() (fmt.Stringer, error) { return eval.Fig5(cfg, densities) }); err != nil {
			return err
		}
	}
	if want("fig6") {
		ran = true
		if err := timed("fig6", cfg.Rounds, func() (fmt.Stringer, error) { return eval.Fig6(cfg, nil) }); err != nil {
			return err
		}
	}
	if want("fig7") {
		ran = true
		if err := timed("fig7", cfg.Rounds, func() (fmt.Stringer, error) { return eval.Fig7(cfg) }); err != nil {
			return err
		}
	}
	if want("fig8") {
		ran = true
		fig8cfg := cfg
		if fig8cfg.Duration < 90*time.Second {
			fig8cfg.Duration = 90 * time.Second
		}
		if err := timed("fig8", fig8cfg.Rounds, func() (fmt.Stringer, error) { return eval.Fig8(fig8cfg, nil, densities) }); err != nil {
			return err
		}
	}
	if want("eq2") {
		ran = true
		fmt.Println(eval.Eq2(0.1, 5, 12))
	}
	if want("eq3") {
		ran = true
		fmt.Println(eval.Eq3(0.001, 0.1, 15))
	}
	if want("mixed") {
		ran = true
		mixCfg := cfg
		if mixCfg.Duration < 90*time.Second {
			mixCfg.Duration = 90 * time.Second
		}
		if err := timed("mixed", mixCfg.Rounds, func() (fmt.Stringer, error) { return eval.MixedTraffic(mixCfg, nil) }); err != nil {
			return err
		}
	}
	if want("ablations") {
		ran = true
		abCfg := cfg
		if abCfg.Duration < 90*time.Second {
			abCfg.Duration = 90 * time.Second
		}
		steps := []struct {
			name string
			cfg  eval.Config
			f    func(eval.Config) (fmt.Stringer, error)
		}{
			{"ablation-scheduler", abCfg, func(c eval.Config) (fmt.Stringer, error) { return eval.SchedulerAblation(c) }},
			{"ablation-sensing", abCfg, func(c eval.Config) (fmt.Stringer, error) { return eval.SensingSweep(c, nil) }},
			{"ablation-doublecheck", cfg, func(c eval.Config) (fmt.Stringer, error) { return eval.DoubleCheckAblation(c) }},
			{"ablation-loss", abCfg, func(c eval.Config) (fmt.Stringer, error) { return eval.PacketLoss(c, nil) }},
		}
		for _, s := range steps {
			c := s.cfg
			f := s.f
			if err := timed(s.name, c.Rounds, func() (fmt.Stringer, error) { return f(c) }); err != nil {
				return err
			}
		}
	}
	if want("speedup") {
		ran = true
		if err := speedup(cfg, &report); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// speedup times a reduced Fig. 4 sweep sequentially and with the full
// worker pool, verifies the results are identical, and records the ratio.
// On a single-core host the ratio is ~1.0 by construction; it scales with
// GOMAXPROCS on real hardware.
func speedup(cfg eval.Config, report *benchReport) error {
	settings := []string{"V1", "V5", "IM", "IM_V5"}
	densities := []float64{40, 80, 120}
	if cfg.Rounds > 3 {
		cfg.Rounds = 3
	}
	if cfg.Duration > 40*time.Second {
		cfg.Duration = 40 * time.Second
	}

	cfg.Workers = 1
	t0 := time.Now()
	seq, err := eval.Fig4(cfg, settings, densities)
	if err != nil {
		return err
	}
	seqWall := time.Since(t0)

	parWorkers := runtime.GOMAXPROCS(0)
	cfg.Workers = parWorkers
	t1 := time.Now()
	par, err := eval.Fig4(cfg, settings, densities)
	if err != nil {
		return err
	}
	parWall := time.Since(t1)

	if !reflect.DeepEqual(seq.Points, par.Points) {
		return fmt.Errorf("speedup: parallel results differ from sequential")
	}
	ratio := float64(seqWall) / float64(parWall)
	fmt.Printf("Speedup — reduced Fig. 4 sweep (%d rounds × %d settings × %d densities)\n",
		cfg.Rounds, len(settings), len(densities))
	fmt.Printf("  sequential (workers=1):  %8.0f ms\n", float64(seqWall.Microseconds())/1000)
	fmt.Printf("  parallel   (workers=%d):  %8.0f ms\n", parWorkers, float64(parWall.Microseconds())/1000)
	fmt.Printf("  speedup: %.2fx on %d CPU(s); results identical\n\n", ratio, runtime.NumCPU())
	report.Experiments = append(report.Experiments,
		expTiming{Experiment: "speedup-sequential", WallMS: float64(seqWall.Microseconds()) / 1000, Rounds: cfg.Rounds, Workers: 1},
		expTiming{Experiment: "speedup-parallel", WallMS: float64(parWall.Microseconds()) / 1000, Rounds: cfg.Rounds, Workers: parWorkers, Speedup: ratio},
	)
	return nil
}
