// Command nwade-bench regenerates the NWADE paper's tables and figures
// (Table II, Fig. 4 through Fig. 8, the Eq. 2/Eq. 3 analytic curves, and
// this repo's extension experiments) from the simulator, printing each as
// a text table. Experiments come from the eval registry: -list shows
// them, -exp selects one by name, by group, or "all".
//
// Examples:
//
//	nwade-bench -list
//	nwade-bench -exp all -rounds 10            # full evaluation (slow)
//	nwade-bench -exp fig4 -rounds 5 -workers 8
//	nwade-bench -exp table2 -rounds 3 -duration 50s
//	nwade-bench -exp fig4 -faults burst15 -retrans
//	nwade-bench -exp speedup -json bench.json  # parallel-vs-sequential
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nwade/internal/eval"
	"nwade/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-bench:", err)
		os.Exit(1)
	}
}

// expTiming is one experiment's machine-readable wall-time record.
type expTiming struct {
	Experiment string  `json:"experiment"`
	WallMS     float64 `json:"wall_ms"`
	Rounds     int     `json:"rounds"`
	Workers    int     `json:"workers"`
	// Speedup is parallel-over-sequential wall time, only set by the
	// "speedup" experiment.
	Speedup float64 `json:"speedup,omitempty"`
}

// benchReport is what -json writes: enough machine context to compare
// runs across hosts.
type benchReport struct {
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"numcpu"`
	Workers     int         `json:"workers"`
	Experiments []expTiming `json:"experiments"`
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment name, group, or \"all\" (see -list)")
		rounds   = flag.Int("rounds", 10, "rounds per attack setting (paper: 10)")
		duration = flag.Duration("duration", 60*time.Second, "simulated span of each round")
		density  = flag.Float64("density", 80, "default vehicle density (veh/min)")
		seed     = flag.Int64("seed", 1, "base random seed")
		quick    = flag.Bool("quick", false, "reduced sweeps for a fast smoke run")
		workers  = flag.Int("workers", 0, "concurrent simulation rounds (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		faults   = flag.String("faults", "", "network fault profile injected into every round ("+strings.Join(vnet.FaultProfileNames(), ", ")+")")
		retrans  = flag.Bool("retrans", false, "enable the protocol retransmission layer (pair with -faults)")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		jsonOut  = flag.String("json", "", "write per-experiment wall times to this JSON file")
	)
	flag.Parse()

	if *list {
		listExperiments()
		return nil
	}

	fc, err := vnet.ParseFaultProfile(*faults)
	if err != nil {
		return err
	}
	cfg := eval.Config{
		Rounds:     *rounds,
		Density:    *density,
		Duration:   *duration,
		BaseSeed:   *seed,
		Workers:    *workers,
		Faults:     fc,
		Resilience: *retrans,
	}
	if *quick {
		cfg.Rounds = 2
		cfg.Densities = []float64{40, 80}
		cfg.Settings = []string{"V1", "V5", "IM", "IM_V5"}
	}

	selected, err := selectExperiments(*exp)
	if err != nil {
		return err
	}

	report := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    *workers,
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	for _, g := range selected {
		start := time.Now()
		res, err := g.Run(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		fmt.Println(res)
		fmt.Printf("[%s: %.0f ms wall]\n\n", g.Name, ms(wall))
		if sr, ok := res.(*eval.SpeedupResult); ok {
			report.Experiments = append(report.Experiments,
				expTiming{Experiment: "speedup-sequential", WallMS: ms(sr.Sequential), Rounds: sr.Rounds, Workers: 1},
				expTiming{Experiment: "speedup-parallel", WallMS: ms(sr.Parallel), Rounds: sr.Rounds, Workers: sr.Workers, Speedup: sr.Ratio()},
			)
			continue
		}
		report.Experiments = append(report.Experiments, expTiming{
			Experiment: g.Name, WallMS: ms(wall), Rounds: cfg.Rounds, Workers: *workers,
		})
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// selectExperiments resolves -exp against the registry: everything, one
// group, or one experiment.
func selectExperiments(exp string) ([]eval.Generator, error) {
	if exp == "all" {
		return eval.All(), nil
	}
	var group []eval.Generator
	for _, g := range eval.All() {
		if g.Meta.Group == exp {
			group = append(group, g)
		}
	}
	if len(group) > 0 {
		return group, nil
	}
	if g, ok := eval.Lookup(exp); ok {
		return []eval.Generator{g}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q (see -list)", exp)
}

// listExperiments prints the registry in run order.
func listExperiments() {
	fmt.Println("registered experiments (run order):")
	for _, g := range eval.All() {
		group := ""
		if g.Meta.Group != "" {
			group = " [" + g.Meta.Group + "]"
		}
		fmt.Printf("  %-22s %s%s\n", g.Name, g.Meta.Desc, group)
	}
	if groups := eval.Groups(); len(groups) > 0 {
		fmt.Printf("groups: %s\n", strings.Join(groups, ", "))
	}
}
