package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwade/internal/benchfmt"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"registered experiments", "fig4", "table2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// The eq2/eq3 experiments are analytic (no simulation), so they make a
// fast end-to-end test of experiment selection and the -json report.
func TestRunAnalyticJSON(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-json", jsonOut}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := benchfmt.Load(jsonOut)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Experiment != "eq2" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestRunTraceForcesSequential(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bench.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-trace", trace, "-workers", "4"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "-trace forces -workers 1") {
		t.Fatalf("missing workers note:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown experiment should fail")
	}
}

func TestRunResumeDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig4", "-quick", "-rounds", "1", "-duration", "4s",
		"-workers", "1", "-resume-dir", dir}
	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("first sweep: %v\n%s", err, first.String())
	}
	cells, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("resume dir is empty after a sweep")
	}
	// Second run resumes from the store; results must match.
	if err := run(args, &second); err != nil {
		t.Fatalf("resumed sweep: %v\n%s", err, second.String())
	}
	trim := func(s string) string { return s[:strings.Index(s, "[fig4:")] }
	if trim(first.String()) != trim(second.String()) {
		t.Errorf("resumed sweep output differs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}

func TestRunDrainNeedsResumeDir(t *testing.T) {
	if err := run([]string{"-exp", "fig4", "-drain"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "-resume-dir") {
		t.Fatalf("want -drain-needs-resume-dir error, got %v", err)
	}
}

// TestRunDrainTwoWorkers is the in-process shape of the CI drain job:
// two concurrent nwade-bench invocations share one sweep directory, and
// each experiment table must come out identical to a lone worker's —
// with the drain stats lines the only difference.
func TestRunDrainTwoWorkers(t *testing.T) {
	ref := t.TempDir()
	args := func(dir, id string) []string {
		return []string{"-exp", "fig4", "-quick", "-rounds", "1", "-duration", "4s",
			"-workers", "2", "-resume-dir", dir, "-drain", "-worker-id", id}
	}
	var refOut bytes.Buffer
	if err := run(args(ref, "ref"), &refOut); err != nil {
		t.Fatalf("reference drain: %v\n%s", err, refOut.String())
	}

	shared := t.TempDir()
	var a, b bytes.Buffer
	errc := make(chan error, 1)
	go func() { errc <- run(args(shared, "a"), &a) }()
	if err := run(args(shared, "b"), &b); err != nil {
		t.Fatalf("worker b: %v\n%s", err, b.String())
	}
	if err := <-errc; err != nil {
		t.Fatalf("worker a: %v\n%s", err, a.String())
	}

	// flatten drops the bracketed wall-time and drain-stats lines, the
	// same filter the CI job applies before its diff.
	flatten := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "[") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if flatten(a.String()) != flatten(refOut.String()) {
		t.Errorf("worker a output differs from single-worker run:\n--- a\n%s--- ref\n%s", a.String(), refOut.String())
	}
	if flatten(b.String()) != flatten(refOut.String()) {
		t.Errorf("worker b output differs from single-worker run:\n--- b\n%s--- ref\n%s", b.String(), refOut.String())
	}

	// Exactly-once execution: the workers' executed counts partition the
	// cell set (stats lines look like "[drain a: executed N, ...]").
	cells, err := os.ReadDir(shared)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, e := range cells {
		if strings.HasSuffix(e.Name(), ".json") {
			want++
		}
	}
	total := drainExecuted(t, a.String()) + drainExecuted(t, b.String())
	if want == 0 || total != want {
		t.Errorf("workers executed %d cells, want exactly the %d stored cells", total, want)
	}
}

// drainExecuted parses "executed N" out of a drain stats line.
func drainExecuted(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[drain ") {
			var id string
			var n int
			if _, err := fmt.Sscanf(line, "[drain %s executed %d,", &id, &n); err != nil {
				t.Fatalf("unparseable drain stats line %q: %v", line, err)
			}
			return n
		}
	}
	t.Fatalf("no drain stats line in output:\n%s", out)
	return 0
}
