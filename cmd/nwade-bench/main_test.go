package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nwade/internal/benchfmt"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"registered experiments", "fig4", "table2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// The eq2/eq3 experiments are analytic (no simulation), so they make a
// fast end-to-end test of experiment selection and the -json report.
func TestRunAnalyticJSON(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-json", jsonOut}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := benchfmt.Load(jsonOut)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Experiment != "eq2" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestRunTraceForcesSequential(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bench.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-trace", trace, "-workers", "4"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "-trace forces -workers 1") {
		t.Fatalf("missing workers note:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown experiment should fail")
	}
}
