package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwade/internal/benchfmt"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"registered experiments", "fig4", "table2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// The eq2/eq3 experiments are analytic (no simulation), so they make a
// fast end-to-end test of experiment selection and the -json report.
func TestRunAnalyticJSON(t *testing.T) {
	jsonOut := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-json", jsonOut}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep, err := benchfmt.Load(jsonOut)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Experiment != "eq2" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestRunTraceForcesSequential(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bench.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-exp", "eq2", "-trace", trace, "-workers", "4"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "-trace forces -workers 1") {
		t.Fatalf("missing workers note:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown experiment should fail")
	}
}

func TestRunResumeDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig4", "-quick", "-rounds", "1", "-duration", "4s",
		"-workers", "1", "-resume-dir", dir}
	var first, second bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("first sweep: %v\n%s", err, first.String())
	}
	cells, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("resume dir is empty after a sweep")
	}
	// Second run resumes from the store; results must match.
	if err := run(args, &second); err != nil {
		t.Fatalf("resumed sweep: %v\n%s", err, second.String())
	}
	trim := func(s string) string { return s[:strings.Index(s, "[fig4:")] }
	if trim(first.String()) != trim(second.String()) {
		t.Errorf("resumed sweep output differs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}
}
