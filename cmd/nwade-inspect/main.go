// Command nwade-inspect prints the static structure the other tools run
// on: intersection geometry (legs, lanes, routes, conflict zones) and a
// demonstration travel-plan blockchain with its verification chain.
//
// Examples:
//
//	nwade-inspect -intersection cfi4
//	nwade-inspect -intersection cross4 -chain
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nwade/internal/chain"
	"nwade/internal/intersection"
	"nwade/internal/plan"
	"nwade/internal/sched"
	"nwade/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-inspect:", err)
		os.Exit(1)
	}
}

var kindByName = map[string]intersection.Kind{
	"roundabout3": intersection.KindRoundabout3,
	"cross4":      intersection.KindCross4,
	"irregular5":  intersection.KindIrregular5,
	"cfi4":        intersection.KindCFI4,
	"ddi4":        intersection.KindDDI4,
}

func run() error {
	var (
		kindName  = flag.String("intersection", "cross4", "layout: roundabout3, cross4, irregular5, cfi4, ddi4")
		showChain = flag.Bool("chain", false, "also build and verify a demo travel-plan chain")
	)
	flag.Parse()
	kind, ok := kindByName[*kindName]
	if !ok {
		return fmt.Errorf("unknown intersection %q", *kindName)
	}
	inter, err := intersection.Build(kind, intersection.Config{})
	if err != nil {
		return err
	}
	printGeometry(inter)
	if *showChain {
		return demoChain(inter)
	}
	return nil
}

// printGeometry dumps legs, routes and the conflict table summary.
func printGeometry(in *intersection.Intersection) {
	fmt.Printf("%s\n", in.Name)
	fmt.Printf("legs: %d, incoming lanes: %d, routes: %d, conflict zones: %d\n\n",
		len(in.LegHeadings), in.TotalInLanes(), len(in.Routes), len(in.Conflicts()))
	for leg, h := range in.LegHeadings {
		fmt.Printf("leg %d: heading %5.1f deg, %d incoming lanes, movements %v\n",
			leg, h*180/3.14159265, in.InLanes[leg], in.MovementsFromLeg(leg))
	}
	fmt.Println("\nroutes:")
	for _, r := range in.Routes {
		fmt.Printf("  #%-3d %-14s -> leg %d  %-8s  len %6.1f m  conflict area [%.0f, %.0f]  %d conflicts\n",
			r.ID, r.From, r.ToLeg, r.Movement, r.Length(), r.CrossStart, r.CrossEnd, len(in.ConflictsOf(r.ID)))
	}
}

// demoChain schedules a little traffic, packages three blocks, verifies
// them, then demonstrates tamper detection and a Merkle inclusion proof.
func demoChain(in *intersection.Intersection) error {
	fmt.Println("\n--- travel-plan chain demo ---")
	signer, err := chain.NewSigner(chain.DefaultKeyBits)
	if err != nil {
		return err
	}
	ledger := sched.NewLedger(in)
	gen := traffic.NewGenerator(in, traffic.Config{RatePerMin: 80}, 7)
	scheduler := &sched.Reservation{}
	var prev *chain.Block
	verifier := chain.NewChain(signer.Public(), 0)
	for i := 0; i < 3; i++ {
		batchStart := time.Duration(i) * 5 * time.Second
		var reqs []sched.Request
		for _, a := range gen.Until(batchStart + 5*time.Second) {
			reqs = append(reqs, sched.Request{Vehicle: a.Vehicle, Char: a.Char, Route: a.Route, ArriveAt: a.At, Speed: a.Speed})
		}
		if len(reqs) == 0 {
			continue
		}
		plans, err := scheduler.Schedule(reqs, batchStart, ledger)
		if err != nil {
			return err
		}
		ledger.Add(plans...)
		b, err := chain.Package(signer, prev, batchStart, plans)
		if err != nil {
			return err
		}
		if err := verifier.Append(b); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Printf("block %d: %2d plans, root %v, hash %v — verified\n",
			b.Seq, len(b.Plans), b.Root, b.HashBlock())
		prev = b
	}
	// Tamper demonstration.
	head := verifier.Head()
	evil := *head
	evil.Plans = append([]*plan.TravelPlan{}, head.Plans...)
	tampered := evil.Plans[0].Clone()
	tampered.Waypoints[0].S += 50
	evil.Plans[0] = tampered
	if err := chain.VerifyRoot(&evil); err != nil {
		fmt.Printf("tampered plan rejected: %v\n", err)
	} else {
		return fmt.Errorf("tampering went undetected")
	}
	// Merkle inclusion proof for the first plan of the head block.
	leaves := head.PlanLeaves()
	proof, err := chain.BuildProof(leaves, 0)
	if err != nil {
		return err
	}
	ok := chain.VerifyProof(head.Root, leaves[0], proof)
	fmt.Printf("merkle inclusion proof for %v: valid=%v (%d siblings)\n",
		head.Plans[0].Vehicle, ok, len(proof.Steps))
	return nil
}
