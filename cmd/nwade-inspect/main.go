// Command nwade-inspect prints the static structure the other tools run
// on: intersection geometry (legs, lanes, routes, conflict zones) and a
// demonstration travel-plan blockchain with its verification chain. The
// trace subcommand summarizes a JSONL observability trace written by
// nwade-sim -trace or nwade-bench -trace.
//
// Examples:
//
//	nwade-inspect -intersection cfi4
//	nwade-inspect -intersection cross4 -chain
//	nwade-inspect trace run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nwade/internal/chain"
	"nwade/internal/intersection"
	"nwade/internal/obs"
	"nwade/internal/ordered"
	"nwade/internal/plan"
	"nwade/internal/sched"
	"nwade/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-inspect:", err)
		os.Exit(1)
	}
}

var kindByName = map[string]intersection.Kind{
	"roundabout3": intersection.KindRoundabout3,
	"cross4":      intersection.KindCross4,
	"irregular5":  intersection.KindIrregular5,
	"cfi4":        intersection.KindCFI4,
	"ddi4":        intersection.KindDDI4,
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "trace" {
		return traceCmd(args[1:], out)
	}
	fs := flag.NewFlagSet("nwade-inspect", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		kindName  = fs.String("intersection", "cross4", "layout: roundabout3, cross4, irregular5, cfi4, ddi4")
		showChain = fs.Bool("chain", false, "also build and verify a demo travel-plan chain")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	kind, ok := kindByName[*kindName]
	if !ok {
		return fmt.Errorf("unknown intersection %q", *kindName)
	}
	inter, err := intersection.Build(kind, intersection.Config{})
	if err != nil {
		return err
	}
	printGeometry(out, inter)
	if *showChain {
		return demoChain(out, inter)
	}
	return nil
}

// traceCmd summarizes a JSONL trace: run header, detection timeline,
// protocol-event census, per-message-kind network load, and — when the
// sum record carries them — per-phase engine spans.
func traceCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-inspect trace", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: nwade-inspect trace FILE.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("want exactly one trace file, got %d args", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	printTrace(out, tr)
	return nil
}

// printTrace renders the parsed trace. Aggregates come from Stats(),
// i.e. recomputed from the raw ev/net records, so the summary is honest
// even for a truncated trace; only the span table needs the sum record.
func printTrace(out io.Writer, tr *obs.Trace) {
	if m := tr.Meta; m != nil {
		fmt.Fprintf(out, "trace        : %s", orDash(m.Tool))
		if m.Experiment != "" {
			fmt.Fprintf(out, " -exp %s", m.Experiment)
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "scenario     : %s (seed %d)\n", orDash(m.Scenario), m.Seed)
		if m.Intersection != "" {
			fmt.Fprintf(out, "intersection : %s\n", m.Intersection)
		}
		if m.DurationNS > 0 {
			fmt.Fprintf(out, "duration     : %v\n", time.Duration(m.DurationNS))
		}
		if m.Profile {
			fmt.Fprintln(out, "profile      : wall-clock span timing enabled")
		}
	}
	ts := tr.Stats()

	fmt.Fprintln(out, "\ndetection timeline:")
	timelineRow(out, "block-broadcast", ts.FirstBroadcast)
	timelineRow(out, "report-sent", ts.FirstReport)
	timelineRow(out, "block-rejected", ts.FirstReject)
	timelineRow(out, "incident-confirmed", ts.FirstConfirm)
	timelineRow(out, "evacuation", ts.FirstEvac)
	if d, ok := ts.DetectionLatency(); ok {
		fmt.Fprintf(out, "  vehicle-attack detection latency: %v (report -> confirm)\n", d.Round(time.Millisecond))
	}
	if d, ok := ts.IMDetectionLatency(); ok {
		fmt.Fprintf(out, "  IM-attack detection latency:      %v (broadcast -> reject)\n", d.Round(time.Millisecond))
	}

	fmt.Fprintf(out, "\nprotocol events (%d total):\n", ts.Events)
	for _, typ := range ordered.Keys(ts.EventsByType) {
		fmt.Fprintf(out, "  %-22s %6d\n", typ, ts.EventsByType[typ])
	}

	fmt.Fprintf(out, "\nnetwork load (%d packets, %d bytes):\n", ts.NetPackets, ts.NetBytes)
	for _, kind := range ordered.Keys(ts.KindBytes) {
		fmt.Fprintf(out, "  %-12s %6d packets %10d bytes\n", kind, ts.KindPackets[kind], ts.KindBytes[kind])
	}

	if sum := tr.Summary; sum != nil && len(sum.Spans) > 0 {
		fmt.Fprintln(out, "\nengine phases:")
		fmt.Fprintf(out, "  %-16s %10s %10s %12s\n", "phase", "calls", "items", "wall")
		for _, sp := range sum.Spans {
			wall := "-"
			if sp.WallNS > 0 {
				wall = time.Duration(sp.WallNS).Round(time.Microsecond).String()
			}
			fmt.Fprintf(out, "  %-16s %10d %10d %12s\n", sp.Path, sp.Count, sp.Items, wall)
		}
	}
}

// timelineRow prints one first-occurrence line; negative means never.
func timelineRow(out io.Writer, label string, at time.Duration) {
	if at < 0 {
		fmt.Fprintf(out, "  first %-20s -\n", label)
		return
	}
	fmt.Fprintf(out, "  first %-20s %v\n", label, at.Round(time.Millisecond))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// printGeometry dumps legs, routes and the conflict table summary.
func printGeometry(out io.Writer, in *intersection.Intersection) {
	fmt.Fprintf(out, "%s\n", in.Name)
	fmt.Fprintf(out, "legs: %d, incoming lanes: %d, routes: %d, conflict zones: %d\n\n",
		len(in.LegHeadings), in.TotalInLanes(), len(in.Routes), len(in.Conflicts()))
	for leg, h := range in.LegHeadings {
		fmt.Fprintf(out, "leg %d: heading %5.1f deg, %d incoming lanes, movements %v\n",
			leg, h*180/3.14159265, in.InLanes[leg], in.MovementsFromLeg(leg))
	}
	fmt.Fprintln(out, "\nroutes:")
	for _, r := range in.Routes {
		fmt.Fprintf(out, "  #%-3d %-14s -> leg %d  %-8s  len %6.1f m  conflict area [%.0f, %.0f]  %d conflicts\n",
			r.ID, r.From, r.ToLeg, r.Movement, r.Length(), r.CrossStart, r.CrossEnd, len(in.ConflictsOf(r.ID)))
	}
}

// demoChain schedules a little traffic, packages three blocks, verifies
// them, then demonstrates tamper detection and a Merkle inclusion proof.
func demoChain(out io.Writer, in *intersection.Intersection) error {
	fmt.Fprintln(out, "\n--- travel-plan chain demo ---")
	signer, err := chain.NewSigner(chain.DefaultKeyBits)
	if err != nil {
		return err
	}
	ledger := sched.NewLedger(in)
	gen := traffic.NewGenerator(in, traffic.Config{RatePerMin: 80}, 7)
	scheduler := &sched.Reservation{}
	var prev *chain.Block
	verifier := chain.NewChain(signer.Public(), 0)
	for i := 0; i < 3; i++ {
		batchStart := time.Duration(i) * 5 * time.Second
		var reqs []sched.Request
		for _, a := range gen.Until(batchStart + 5*time.Second) {
			reqs = append(reqs, sched.Request{Vehicle: a.Vehicle, Char: a.Char, Route: a.Route, ArriveAt: a.At, Speed: a.Speed})
		}
		if len(reqs) == 0 {
			continue
		}
		plans, err := scheduler.Schedule(reqs, batchStart, ledger)
		if err != nil {
			return err
		}
		ledger.Add(plans...)
		b, err := chain.Package(signer, prev, batchStart, plans)
		if err != nil {
			return err
		}
		if err := verifier.Append(b); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Fprintf(out, "block %d: %2d plans, root %v, hash %v — verified\n",
			b.Seq, len(b.Plans), b.Root, b.HashBlock())
		prev = b
	}
	// Tamper demonstration.
	head := verifier.Head()
	evil := *head
	evil.Plans = append([]*plan.TravelPlan{}, head.Plans...)
	tampered := evil.Plans[0].Clone()
	tampered.Waypoints[0].S += 50
	evil.Plans[0] = tampered
	if err := chain.VerifyRoot(&evil); err != nil {
		fmt.Fprintf(out, "tampered plan rejected: %v\n", err)
	} else {
		return fmt.Errorf("tampering went undetected")
	}
	// Merkle inclusion proof for the first plan of the head block.
	leaves := head.PlanLeaves()
	proof, err := chain.BuildProof(leaves, 0)
	if err != nil {
		return err
	}
	ok := chain.VerifyProof(head.Root, leaves[0], proof)
	fmt.Fprintf(out, "merkle inclusion proof for %v: valid=%v (%d siblings)\n",
		head.Plans[0].Vehicle, ok, len(proof.Steps))
	return nil
}
