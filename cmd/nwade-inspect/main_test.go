package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nwade/internal/obs"
)

func TestRunGeometry(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-intersection", "cross4"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "routes:") {
		t.Fatalf("geometry output missing routes:\n%s", buf.String())
	}
}

func TestRunUnknownIntersection(t *testing.T) {
	if err := run([]string{"-intersection", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("unknown intersection should fail")
	}
}

func TestTraceSubcommand(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.New(obs.Options{Trace: f})
	sink.WriteMeta(obs.Meta{Tool: "test", Scenario: "V1", Seed: 7})
	sink.Event(1*time.Second, "block-broadcast", 0, 0, "")
	sink.Event(2*time.Second, "report-sent", 3, 9, "")
	sink.Event(3*time.Second, "incident-confirmed", 0, 9, "")
	sink.NetSend(2*time.Second, "v3", "IM", "incident", 120, false)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"trace", path}, &buf); err != nil {
		t.Fatalf("trace subcommand: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario     : V1 (seed 7)",
		"vehicle-attack detection latency: 1s",
		"incident          1 packets        120 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSubcommandUsage(t *testing.T) {
	if err := run([]string{"trace"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("trace with no file should fail")
	}
	if err := run([]string{"trace", "does-not-exist.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Fatalf("trace with missing file should fail")
	}
}
