// nwade-serve is the simulation service daemon: it exposes the engine
// behind a JSON HTTP API (submit, status, result, cancel, live SSE
// event streams, /healthz, /metricsz) and checkpoints running jobs so a
// killed daemon resumes them on restart. See DESIGN.md §15 and the
// README quickstart.
//
//	nwade-serve -addr 127.0.0.1:8787 -dir serve-state
//	curl -s -X POST localhost:8787/jobs -d '{"scenario":"V1","duration":"60s","seed":42}'
//	curl -N localhost:8787/jobs/j0000/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nwade/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-serve:", err)
		os.Exit(1)
	}
}

// testQuit, when non-nil, lets tests request the same graceful shutdown
// a SIGTERM triggers without signalling the whole test process.
var testQuit chan struct{}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:8787", "listen address (host:port; port 0 picks a free port)")
		dir       = fs.String("dir", "serve-state", "state directory; restart with the same directory to resume jobs")
		jobs      = fs.Int("jobs", 2, "concurrently running simulation jobs")
		ckptEvery = fs.Duration("checkpoint-every", 5*time.Second,
			"default per-job checkpoint interval in simulated time (negative disables)")
		maxRunning = fs.Int("max-running-per-client", 0,
			"cap on one client's concurrently running jobs (0 = unlimited)")
		maxQueued = fs.Int("max-queued-per-client", 0,
			"cap on one client's queued jobs before submits get 429 (0 = unlimited)")
		importDir = fs.String("import", "",
			"adopt a parked job directory (from another daemon's drain) before serving; repeatable via comma-separated paths")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// Bind the port before touching the state directory: if another
	// daemon already serves this address (and so likely owns the same
	// state dir), fail without recovering — and racing on — its jobs.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Options{
		Dir:                 *dir,
		Workers:             *jobs,
		CheckpointEvery:     *ckptEvery,
		MaxRunningPerClient: *maxRunning,
		MaxQueuedPerClient:  *maxQueued,
	})
	if err != nil {
		closeErr := ln.Close()
		return errors.Join(err, closeErr)
	}
	for _, src := range strings.Split(*importDir, ",") {
		if src = strings.TrimSpace(src); src == "" {
			continue
		}
		id, err := s.Import(src)
		if err != nil {
			return errors.Join(err, s.Close(), ln.Close())
		}
		fmt.Fprintf(out, "nwade-serve: imported %s as job %s\n", src, id)
	}
	fmt.Fprintf(out, "nwade-serve listening on http://%s (state %s)\n", ln.Addr(), *dir)

	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case <-testQuit:
	case err := <-errc:
		closeErr := s.Close()
		return errors.Join(err, closeErr)
	}

	// Graceful shutdown: stop accepting, then park running jobs as
	// checkpointed-and-queued so the next start resumes them.
	fmt.Fprintln(out, "nwade-serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := hs.Shutdown(sctx)
	return errors.Join(shutErr, s.Close())
}
