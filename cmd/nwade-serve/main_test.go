package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer the daemon's startup banner
// lands in; the test scrapes the bound address out of it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on (http://[^ ]+) `)

// TestServeEndToEnd boots the real daemon on an ephemeral port, drives
// one job through the HTTP API, and shuts it down gracefully via the
// test quit channel (standing in for SIGTERM).
func TestServeEndToEnd(t *testing.T) {
	out := &syncBuffer{}
	testQuit = make(chan struct{})
	defer func() { testQuit = nil }()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(), "-jobs", "1"}, out)
	}()

	var base string
	for deadline := time.Now().Add(time.Minute); ; {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"scenario":"benign","duration":"3s","seed":5,"keybits":512}`))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || v.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, v)
	}

	for deadline := time.Now().Add(time.Minute); ; {
		resp, err := http.Get(base + "/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				Digest string `json:"digest"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == "done" {
			if st.Result == nil || st.Result.Digest == "" {
				t.Fatalf("done without digest: %+v", st)
			}
			break
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(testQuit)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown banner in %q", out.String())
	}
}

// startDaemon boots the daemon with extra flags and returns its base
// URL, its exit channel, and the quit channel that stands in for
// SIGTERM.
func startDaemon(t *testing.T, out *syncBuffer, extra ...string) (string, chan error, chan struct{}) {
	t.Helper()
	quit := make(chan struct{})
	testQuit = quit
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-jobs", "1"}, extra...)
	go func() { done <- run(args, out) }()
	for deadline := time.Now().Add(time.Minute); ; {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return m[1], done, quit
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stopDaemon triggers the SIGTERM path and waits for a clean exit.
func stopDaemon(t *testing.T, done chan error, quit chan struct{}) {
	t.Helper()
	close(quit)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with: %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not shut down")
	}
	testQuit = nil
}

// pollState waits for a job to reach a state over the HTTP API.
func pollState(t *testing.T, base, id, want string) {
	t.Helper()
	for deadline := time.Now().Add(time.Minute); ; {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == want {
			return
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s, want %s", st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeDrainImportFlag migrates a job between two real daemons:
// drain it on the first, adopt its parked directory on the second via
// the -import flag, and watch it finish there.
func TestServeDrainImportFlag(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	outA := &syncBuffer{}
	baseA, doneA, quitA := startDaemon(t, outA, "-dir", dirA)

	resp, err := http.Post(baseA+"/jobs", "application/json",
		strings.NewReader(`{"scenario":"benign","duration":"30s","seed":5,"keybits":512,"throttle":"10ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pollState(t, baseA, v.ID, "running")
	resp, err = http.Post(baseA+"/jobs/"+v.ID+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	pollState(t, baseA, v.ID, "parked")
	stopDaemon(t, doneA, quitA)

	outB := &syncBuffer{}
	baseB, doneB, quitB := startDaemon(t, outB,
		"-dir", dirB, "-import", dirA+"/jobs/"+v.ID)
	if !strings.Contains(outB.String(), "imported") {
		t.Errorf("missing import banner in %q", outB.String())
	}
	pollState(t, baseB, v.ID, "done")
	stopDaemon(t, doneB, quitB)
}

func TestServeRejectsArgsAndBadFlags(t *testing.T) {
	if err := run([]string{"stray"}, &syncBuffer{}); err == nil {
		t.Error("stray positional argument must be rejected")
	}
	if err := run([]string{"-nosuchflag"}, &syncBuffer{}); err == nil {
		t.Error("unknown flag must be rejected")
	}
	if err := run([]string{"-addr", "999.999.999.999:1", "-dir", t.TempDir()}, &syncBuffer{}); err == nil {
		t.Error("unusable listen address must be rejected")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-dir", t.TempDir(),
		"-import", t.TempDir() + "/no-such-job"}, &syncBuffer{}); err == nil {
		t.Error("unreadable -import directory must be rejected")
	}
	badDir := t.TempDir() + "/flat"
	if err := os.WriteFile(badDir, []byte("file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-dir", badDir}, &syncBuffer{}); err == nil {
		t.Error("state dir that is a file must be rejected")
	}
}
