package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanAndRegressed(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json",
		`{"experiments":[{"experiment":"a","wall_ms":100},{"experiment":"b","wall_ms":100}]}`)
	ok := writeReport(t, dir, "ok.json",
		`{"experiments":[{"experiment":"a","wall_ms":105},{"experiment":"b","wall_ms":90}]}`)
	bad := writeReport(t, dir, "bad.json",
		`{"experiments":[{"experiment":"a","wall_ms":100},{"experiment":"b","wall_ms":200}]}`)

	var buf bytes.Buffer
	code, err := run([]string{"-threshold", "15%", old, ok}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("clean diff: code=%d err=%v\n%s", code, err, buf.String())
	}

	buf.Reset()
	code, err = run([]string{"-threshold", "15%", old, bad}, &buf)
	if err != nil || code != 1 {
		t.Fatalf("regressed diff: code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("output missing REGRESSION marker:\n%s", buf.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", `{"experiments":[]}`)
	for _, args := range [][]string{
		{old},                                  // missing NEW
		{"-threshold", "nope", old, old},       // bad threshold
		{old, filepath.Join(dir, "gone.json")}, // unreadable file
	} {
		code, err := run(args, &bytes.Buffer{})
		if err == nil || code != 2 {
			t.Fatalf("run(%v): code=%d err=%v, want usage error", args, code, err)
		}
	}
}
