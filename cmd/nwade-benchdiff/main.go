// nwade-benchdiff compares two nwade-bench JSON reports and exits
// non-zero when any experiment slowed down past the threshold. It is
// the CI benchmark-regression gate:
//
//	nwade-benchdiff -threshold 15% BENCH_baseline.json BENCH_new.json
//
// Experiments present in only one report are printed but never gate —
// adding or retiring an experiment is a schema change, not a
// regression.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nwade/internal/benchfmt"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwade-benchdiff:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// run executes the comparison and returns the process exit code:
// 0 clean, 1 regression found, 2 usage or I/O error.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("nwade-benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	threshold := fs.String("threshold", "15%", "max tolerated slowdown per experiment (\"15%\" or \"0.15\")")
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: nwade-benchdiff [-threshold 15%] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2, fmt.Errorf("want exactly 2 report files, got %d", fs.NArg())
	}
	thr, err := benchfmt.ParseThreshold(*threshold)
	if err != nil {
		return 2, err
	}
	oldRep, err := benchfmt.Load(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	newRep, err := benchfmt.Load(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	deltas := benchfmt.Diff(oldRep, newRep, thr)
	fmt.Fprint(out, benchfmt.Format(deltas))
	if n := benchfmt.Regressions(deltas); n > 0 {
		fmt.Fprintf(out, "\n%d experiment(s) regressed past %.1f%%\n", n, thr*100)
		return 1, nil
	}
	fmt.Fprintf(out, "\nno regression past %.1f%%\n", thr*100)
	return 0, nil
}
