// nwade-replay resumes checkpointed simulation runs and localizes
// replay divergence.
//
//	nwade-replay resume -in run.snap          # continue a run to the end
//	nwade-replay check  -in run.snap          # resumed digest == continuous digest?
//	nwade-replay bisect -in run.snap          # first divergent tick + subsystem
//
// A checkpoint (written by nwade-sim -checkpoint-every, or by this
// tool) carries the run's Spec and its complete state at one tick.
// `check` replays the run both ways — continuously from t=0 and resumed
// from the checkpoint — and compares the final run digests; on a
// deterministic build they are bit-identical. `bisect` steps both runs
// tick by tick and binary-searches the first tick whose per-subsystem
// state digests differ, attributing the divergence to the engine
// (physical world), traffic generator, network, protocol cores, or
// metrics collector. The -perturb flag injects a deliberate state
// mutation at a chosen tick, which exercises the bisector and
// demonstrates the attribution (the CI replay job uses it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"nwade/internal/chain"
	"nwade/internal/metrics"
	"nwade/internal/nwade"
	"nwade/internal/obs"
	"nwade/internal/sim"
	"nwade/internal/snap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-replay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: nwade-replay <resume|check|bisect> [flags] (-h for help)")
	}
	switch args[0] {
	case "resume":
		return runResume(args[1:], out)
	case "check":
		return runCheck(args[1:], out)
	case "bisect":
		return runBisect(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want resume, check or bisect)", args[0])
	}
}

// load reads a checkpoint and rebuilds its configuration and signer.
func load(path string) (sim.Config, *sim.State, *chain.Signer, error) {
	spec, st, err := snap.ReadFile(path)
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	cfg, err := spec.BuildConfig()
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	signer, err := chain.RestoreSigner(st.Protocol.Signer)
	if err != nil {
		return sim.Config{}, nil, nil, err
	}
	return cfg, st, signer, nil
}

func summarize(out io.Writer, label string, res metrics.RunResult) {
	fmt.Fprintf(out, "%-10s spawned=%d exited=%d collisions=%d digest=%s\n",
		label, res.Spawned, res.Exited, res.Collisions, metrics.Digest(res))
}

// runResume continues a checkpointed run to its configured duration.
func runResume(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay resume", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("resume: -in is required")
	}
	cfg, st, _, err := load(*in)
	if err != nil {
		return err
	}
	e, err := sim.Restore(cfg, st)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "resumed at %v of %v (%d vehicles live)\n",
		st.Engine.Now, cfg.Duration, len(st.Engine.Bodies))
	summarize(out, "resumed", e.Run())
	return nil
}

// runCheck replays the run continuously and resumed, and compares the
// final digests. Exit status is the CI contract: non-zero on mismatch.
func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay check", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("check: -in is required")
	}
	cfg, st, signer, err := load(*in)
	if err != nil {
		return err
	}
	cont, err := sim.New(cfg, sim.WithSigner(signer))
	if err != nil {
		return err
	}
	contRes := cont.Run()
	resumed, err := sim.Restore(cfg, st)
	if err != nil {
		return err
	}
	resRes := resumed.Run()
	summarize(out, "continuous", contRes)
	summarize(out, "resumed", resRes)
	if metrics.Digest(contRes) != metrics.Digest(resRes) {
		return fmt.Errorf("check: resumed run diverged from continuous run (bisect to localize)")
	}
	fmt.Fprintln(out, "check: digests match")
	return nil
}

// lane is one replayable run for the bisector: a base state plus a memo
// of per-tick snapshots, so probing tick t restores from the nearest
// snapshot at or before t instead of stepping from the start each time.
// An optional perturbation is applied the moment the lane reaches its
// tick; snapshots at or past it always derive from the perturbed state.
type lane struct {
	cfg       sim.Config
	base      *sim.State
	perturbAt time.Duration
	perturb   func(*sim.State) error
	cache     map[time.Duration]*sim.State
}

func newLane(cfg sim.Config, base *sim.State) *lane {
	return &lane{cfg: cfg, base: base,
		cache: map[time.Duration]*sim.State{base.Engine.Now: base}}
}

// stateAt returns the lane's state at tick boundary t (a multiple of the
// step, at or after the base tick). Callers must not mutate the result.
func (l *lane) stateAt(t time.Duration) (*sim.State, error) {
	if l.perturb != nil && t >= l.perturbAt {
		if err := l.ensurePerturbed(); err != nil {
			return nil, err
		}
	}
	if st, ok := l.cache[t]; ok {
		return st, nil
	}
	// Nearest snapshot at or before t; probes past the perturbation
	// must not restart from before it (the mutation is baked into the
	// cached perturbed state, not into the step function).
	var fromTick time.Duration = -1
	for tick := range l.cache {
		if tick <= t && tick > fromTick {
			if l.perturb != nil && t >= l.perturbAt && tick < l.perturbAt {
				continue
			}
			fromTick = tick
		}
	}
	if fromTick < 0 {
		return nil, fmt.Errorf("bisect: no snapshot at or before %v", t)
	}
	e, err := sim.Restore(l.cfg, l.cache[fromTick])
	if err != nil {
		return nil, err
	}
	for e.Now() < t {
		e.Step()
	}
	st, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	l.cache[t] = st
	return st, nil
}

// ensurePerturbed computes the state at the perturbation tick, applies
// the mutation to a deep copy, and caches the result under that tick.
func (l *lane) ensurePerturbed() error {
	if _, ok := l.cache[l.perturbAt]; ok {
		return nil
	}
	fn := l.perturb
	l.perturb = nil // compute the pre-perturbation state without recursing
	st, err := l.stateAt(l.perturbAt)
	l.perturb = fn
	if err != nil {
		return err
	}
	mutated, err := cloneState(st)
	if err != nil {
		return err
	}
	if err := fn(mutated); err != nil {
		return err
	}
	l.cache[l.perturbAt] = mutated
	return nil
}

// cloneState deep-copies a state through its canonical encoding.
func cloneState(st *sim.State) (*sim.State, error) {
	b, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("bisect: clone: %w", err)
	}
	out := &sim.State{}
	if err := json.Unmarshal(b, out); err != nil {
		return nil, fmt.Errorf("bisect: clone: %w", err)
	}
	return out, nil
}

// parsePerturb parses "<duration>:<subsystem>" and returns the tick and
// the state mutation that injects a divergence into that subsystem.
func parsePerturb(s string) (time.Duration, func(*sim.State) error, error) {
	at, sub, ok := strings.Cut(s, ":")
	if !ok {
		return 0, nil, fmt.Errorf("bisect: -perturb wants <duration>:<subsystem>, got %q", s)
	}
	tick, err := time.ParseDuration(at)
	if err != nil {
		return 0, nil, fmt.Errorf("bisect: -perturb time: %w", err)
	}
	var fn func(*sim.State) error
	switch sub {
	case "engine":
		fn = func(st *sim.State) error {
			for i := range st.Engine.Bodies {
				if !st.Engine.Bodies[i].Exited {
					st.Engine.Bodies[i].S += 0.5
					return nil
				}
			}
			return fmt.Errorf("bisect: no live body to perturb at %v", st.Engine.Now)
		}
	case "traffic":
		fn = func(st *sim.State) error {
			st.Traffic.NextAt += 100 * time.Millisecond
			return nil
		}
	case "net":
		fn = func(st *sim.State) error {
			if len(st.Net.Queue) == 0 {
				return fmt.Errorf("bisect: no queued delivery to perturb at %v", st.Engine.Now)
			}
			st.Net.Queue[0].Deliver += 100 * time.Millisecond
			return nil
		}
	case "protocol":
		fn = func(st *sim.State) error {
			st.Protocol.IM.Nonce++
			return nil
		}
	case "collector":
		fn = func(st *sim.State) error {
			st.Collector.Events = append(st.Collector.Events,
				nwade.Event{At: st.Engine.Now, Type: nwade.EvBlockBroadcast, Info: "perturbed"})
			return nil
		}
	default:
		return 0, nil, fmt.Errorf("bisect: unknown subsystem %q (want one of %s)",
			sub, strings.Join(snap.Subsystems, ", "))
	}
	return tick, fn, nil
}

// runBisect binary-searches the first tick at which the resumed run's
// state digest diverges from the continuous run's, and reports which
// subsystems differ there. Divergence is assumed persistent once it
// appears (state feeds forward), which is what makes the search valid.
func runBisect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay bisect", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	perturb := fs.String("perturb", "", "inject a divergence: <duration>:<subsystem> (subsystems: "+strings.Join(snap.Subsystems, ", ")+")")
	tracePath := fs.String("trace", "", "obs trace (JSONL) of the original run, for event context around the divergence")
	window := fs.Duration("window", 2*time.Second, "context window around the divergent tick for -trace events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("bisect: -in is required")
	}
	cfg, st, signer, err := load(*in)
	if err != nil {
		return err
	}
	base := st.Engine.Now

	// Reference lane: the continuous run, snapshotted at the
	// checkpoint tick. Candidate lane: the checkpointed state itself,
	// optionally perturbed.
	cont, err := sim.New(cfg, sim.WithSigner(signer))
	if err != nil {
		return err
	}
	for cont.Now() < base {
		cont.Step()
	}
	refBase, err := cont.Snapshot()
	if err != nil {
		return err
	}
	ref := newLane(cfg, refBase)
	cand := newLane(cfg, st)
	if *perturb != "" {
		tick, fn, err := parsePerturb(*perturb)
		if err != nil {
			return err
		}
		if tick < base || tick > cfg.Duration {
			return fmt.Errorf("bisect: -perturb tick %v outside [%v, %v]", tick, base, cfg.Duration)
		}
		cand.perturbAt = tick.Truncate(cfg.Step)
		cand.perturb = fn
	}

	diverged := func(t time.Duration) ([]string, error) {
		rs, err := ref.stateAt(t)
		if err != nil {
			return nil, err
		}
		cs, err := cand.stateAt(t)
		if err != nil {
			return nil, err
		}
		rd, _, err := snap.Digests(rs)
		if err != nil {
			return nil, err
		}
		cd, _, err := snap.Digests(cs)
		if err != nil {
			return nil, err
		}
		var diff []string
		for _, name := range snap.Subsystems {
			if rd[name] != cd[name] {
				diff = append(diff, name)
			}
		}
		return diff, nil
	}

	n := int((cfg.Duration - base) / cfg.Step)
	tickAt := func(i int) time.Duration { return base + time.Duration(i)*cfg.Step }
	lastDiff, err := diverged(tickAt(n))
	if err != nil {
		return err
	}
	if len(lastDiff) == 0 {
		fmt.Fprintf(out, "no divergence: states identical from %v through %v (%d ticks)\n",
			base, tickAt(n), n+1)
		return nil
	}
	// Invariant: diverged(hi) is true; find the smallest such tick.
	lo, hi := 0, n
	firstDiff := lastDiff
	for lo < hi {
		mid := (lo + hi) / 2
		diff, err := diverged(tickAt(mid))
		if err != nil {
			return err
		}
		if len(diff) > 0 {
			hi, firstDiff = mid, diff
		} else {
			lo = mid + 1
		}
	}
	at := tickAt(hi)
	fmt.Fprintf(out, "divergence at tick %v (first differing state)\n", at)
	fmt.Fprintf(out, "subsystems   : %s\n", strings.Join(firstDiff, ", "))
	if *tracePath != "" {
		if err := printTraceContext(out, *tracePath, at, *window); err != nil {
			return err
		}
	}
	return nil
}

// printTraceContext prints the original run's observed events near the
// divergent tick, so the operator sees what the run was doing there.
func printTraceContext(out io.Writer, path string, at, window time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	var near []obs.Ev
	for _, ev := range tr.Events {
		t := time.Duration(ev.T)
		if t >= at-window && t <= at+window {
			near = append(near, ev)
		}
	}
	sort.SliceStable(near, func(i, j int) bool { return near[i].T < near[j].T })
	fmt.Fprintf(out, "trace events within %v of the divergence (%d):\n", window, len(near))
	const maxShown = 24
	for i, ev := range near {
		if i == maxShown {
			fmt.Fprintf(out, "  ... %d more\n", len(near)-maxShown)
			break
		}
		fmt.Fprintf(out, "  %-10v %-22s actor=%d subject=%d %s\n",
			time.Duration(ev.T).Round(time.Millisecond), ev.Type, ev.Actor, ev.Subject, ev.Info)
	}
	return nil
}
