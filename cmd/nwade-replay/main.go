// nwade-replay resumes checkpointed simulation runs and localizes
// replay divergence.
//
//	nwade-replay resume -in run.snap          # continue a run to the end
//	nwade-replay check  -in run.snap          # resumed digest == continuous digest?
//	nwade-replay bisect -in run.snap          # first divergent tick + subsystem
//
// A checkpoint (written by nwade-sim -checkpoint-every, or by this
// tool) carries the run's Spec and its complete state at one tick —
// either a single intersection or a whole road network; every
// subcommand handles both. `check` replays the run both ways —
// continuously from t=0 and resumed from the checkpoint — and compares
// the final run digests; on a deterministic build they are
// bit-identical. `bisect` steps both runs tick by tick and
// binary-searches the first tick whose per-subsystem state digests
// differ, attributing the divergence to the engine (physical world),
// traffic generator, network, protocol cores, or metrics collector —
// and, for a road network, to the region (r0/engine, r3/protocol, ...)
// or the backbone. The -perturb flag injects a deliberate state
// mutation at a chosen tick, which exercises the bisector and
// demonstrates the attribution (the CI replay job uses it).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nwade/internal/cliconf"
	"nwade/internal/metrics"
	"nwade/internal/nwade"
	"nwade/internal/obs"
	"nwade/internal/roadnet"
	"nwade/internal/sim"
	"nwade/internal/snap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-replay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: nwade-replay <resume|check|bisect> [flags] (-h for help)")
	}
	switch args[0] {
	case "resume":
		return runResume(args[1:], out)
	case "check":
		return runCheck(args[1:], out)
	case "bisect":
		return runBisect(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want resume, check or bisect)", args[0])
	}
}

func summarize(out io.Writer, label string, res metrics.RunResult) {
	fmt.Fprintf(out, "%-10s spawned=%d exited=%d collisions=%d digest=%s\n",
		label, res.Spawned, res.Exited, res.Collisions, metrics.Digest(res))
}

func summarizeNet(out io.Writer, label string, n *roadnet.Network) {
	var spawned, exited, collisions int
	for _, res := range n.Results() {
		spawned += res.Spawned
		exited += res.Exited
		collisions += res.Collisions
	}
	st := n.Stats()
	fmt.Fprintf(out, "%-10s spawned=%d exited=%d collisions=%d handoffs=%d digest=%s\n",
		label, spawned, exited, collisions, st.Handoffs, n.Digest())
}

// runResume continues a checkpointed run to its configured duration.
func runResume(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay resume", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("resume: -in is required")
	}
	c, err := cliconf.Load(*in)
	if err != nil {
		return err
	}
	if c.IsNetwork() {
		n, err := roadnet.Restore(c.Cfg, c.Net)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed at %v of %v (%d regions)\n", c.Now(), c.Cfg.Duration, n.Regions())
		n.Run()
		summarizeNet(out, "resumed", n)
		return nil
	}
	e, err := sim.Restore(c.Cfg, c.State)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "resumed at %v of %v (%d vehicles live)\n",
		c.Now(), c.Cfg.Duration, len(c.State.Engine.Bodies))
	summarize(out, "resumed", e.Run())
	return nil
}

// runCheck replays the run continuously and resumed, and compares the
// final digests. Exit status is the CI contract: non-zero on mismatch.
func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay check", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("check: -in is required")
	}
	c, err := cliconf.Load(*in)
	if err != nil {
		return err
	}
	signers, err := c.Signers()
	if err != nil {
		return err
	}
	if c.IsNetwork() {
		cont, err := roadnet.New(c.Cfg, roadnet.WithSigners(signers))
		if err != nil {
			return err
		}
		cont.Run()
		resumed, err := roadnet.Restore(c.Cfg, c.Net)
		if err != nil {
			return err
		}
		resumed.Run()
		summarizeNet(out, "continuous", cont)
		summarizeNet(out, "resumed", resumed)
		if cont.Digest() != resumed.Digest() {
			return fmt.Errorf("check: resumed run diverged from continuous run (bisect to localize)")
		}
		fmt.Fprintln(out, "check: digests match")
		return nil
	}
	cont, err := sim.New(c.Cfg, sim.WithSigner(signers[0]))
	if err != nil {
		return err
	}
	contRes := cont.Run()
	resumed, err := sim.Restore(c.Cfg, c.State)
	if err != nil {
		return err
	}
	resRes := resumed.Run()
	summarize(out, "continuous", contRes)
	summarize(out, "resumed", resRes)
	if metrics.Digest(contRes) != metrics.Digest(resRes) {
		return fmt.Errorf("check: resumed run diverged from continuous run (bisect to localize)")
	}
	fmt.Fprintln(out, "check: digests match")
	return nil
}

// replayable abstracts the two run kinds for the bisector: restore a
// state, step to a tick, snapshot, and digest per subsystem.
type replayable interface {
	// stateNow returns the simulated time a state was taken at.
	stateNow(st any) time.Duration
	// advance restores st, steps to tick t, and snapshots.
	advance(st any, t time.Duration) (any, error)
	// digests fingerprints every subsystem of a state.
	digests(st any) (map[string]string, error)
	// clone deep-copies a state.
	clone(st any) (any, error)
	// subsystems lists the digest keys, in report order.
	subsystems() []string
}

// simReplay is the single-intersection replayable.
type simReplay struct{ cfg sim.Scenario }

func (r simReplay) stateNow(st any) time.Duration { return st.(*sim.State).Engine.Now }

func (r simReplay) advance(st any, t time.Duration) (any, error) {
	e, err := sim.Restore(r.cfg, st.(*sim.State))
	if err != nil {
		return nil, err
	}
	for e.Now() < t {
		e.Step()
	}
	return e.Snapshot()
}

func (r simReplay) digests(st any) (map[string]string, error) {
	per, _, err := snap.Digests(st.(*sim.State))
	return per, err
}

func (r simReplay) clone(st any) (any, error) {
	b, err := json.Marshal(st.(*sim.State))
	if err != nil {
		return nil, fmt.Errorf("bisect: clone: %w", err)
	}
	out := &sim.State{}
	if err := json.Unmarshal(b, out); err != nil {
		return nil, fmt.Errorf("bisect: clone: %w", err)
	}
	return out, nil
}

func (r simReplay) subsystems() []string { return snap.Subsystems }

// netReplay is the road-network replayable. Subsystem keys are
// region-qualified (r0/engine ... rN/collector) plus "backbone" for the
// cross-region state: inter-IM messages in flight, suspect and head
// tables, and the handoff counters.
type netReplay struct {
	cfg     sim.Scenario
	regions int
}

func (r netReplay) stateNow(st any) time.Duration { return st.(*roadnet.State).Now }

func (r netReplay) advance(st any, t time.Duration) (any, error) {
	n, err := roadnet.Restore(r.cfg, st.(*roadnet.State))
	if err != nil {
		return nil, err
	}
	for n.Now() < t {
		n.Step()
	}
	return n.Snapshot()
}

func (r netReplay) digests(st any) (map[string]string, error) {
	ns := st.(*roadnet.State)
	out := make(map[string]string, r.regions*len(snap.Subsystems)+1)
	for i, rs := range ns.Regions {
		per, _, err := snap.Digests(rs)
		if err != nil {
			return nil, fmt.Errorf("region %d: %w", i, err)
		}
		for sub, d := range per {
			out[fmt.Sprintf("r%d/%s", i, sub)] = d
		}
	}
	cross := struct {
		Backbone any
		Tables   any
		Stats    roadnet.Stats
	}{ns.Backbone, ns.Tables, ns.Stats}
	b, err := json.Marshal(cross)
	if err != nil {
		return nil, fmt.Errorf("backbone digest: %w", err)
	}
	sum := sha256.Sum256(b)
	out["backbone"] = hex.EncodeToString(sum[:])
	return out, nil
}

func (r netReplay) clone(st any) (any, error) {
	b, err := st.(*roadnet.State).Encode()
	if err != nil {
		return nil, fmt.Errorf("bisect: clone: %w", err)
	}
	return roadnet.DecodeState(b)
}

func (r netReplay) subsystems() []string {
	out := make([]string, 0, r.regions*len(snap.Subsystems)+1)
	for i := 0; i < r.regions; i++ {
		for _, sub := range snap.Subsystems {
			out = append(out, fmt.Sprintf("r%d/%s", i, sub))
		}
	}
	return append(out, "backbone")
}

// lane is one replayable run for the bisector: a base state plus a memo
// of per-tick snapshots, so probing tick t restores from the nearest
// snapshot at or before t instead of stepping from the start each time.
// An optional perturbation is applied the moment the lane reaches its
// tick; snapshots at or past it always derive from the perturbed state.
type lane struct {
	rp        replayable
	base      any
	perturbAt time.Duration
	perturb   func(any) error
	cache     map[time.Duration]any
}

func newLane(rp replayable, base any) *lane {
	return &lane{rp: rp, base: base,
		cache: map[time.Duration]any{rp.stateNow(base): base}}
}

// stateAt returns the lane's state at tick boundary t (a multiple of the
// step, at or after the base tick). Callers must not mutate the result.
func (l *lane) stateAt(t time.Duration) (any, error) {
	if l.perturb != nil && t >= l.perturbAt {
		if err := l.ensurePerturbed(); err != nil {
			return nil, err
		}
	}
	if st, ok := l.cache[t]; ok {
		return st, nil
	}
	// Nearest snapshot at or before t; probes past the perturbation
	// must not restart from before it (the mutation is baked into the
	// cached perturbed state, not into the step function).
	var fromTick time.Duration = -1
	for tick := range l.cache {
		if tick <= t && tick > fromTick {
			if l.perturb != nil && t >= l.perturbAt && tick < l.perturbAt {
				continue
			}
			fromTick = tick
		}
	}
	if fromTick < 0 {
		return nil, fmt.Errorf("bisect: no snapshot at or before %v", t)
	}
	st, err := l.rp.advance(l.cache[fromTick], t)
	if err != nil {
		return nil, err
	}
	l.cache[t] = st
	return st, nil
}

// ensurePerturbed computes the state at the perturbation tick, applies
// the mutation to a deep copy, and caches the result under that tick.
func (l *lane) ensurePerturbed() error {
	if _, ok := l.cache[l.perturbAt]; ok {
		return nil
	}
	fn := l.perturb
	l.perturb = nil // compute the pre-perturbation state without recursing
	st, err := l.stateAt(l.perturbAt)
	l.perturb = fn
	if err != nil {
		return err
	}
	mutated, err := l.rp.clone(st)
	if err != nil {
		return err
	}
	if err := fn(mutated); err != nil {
		return err
	}
	l.cache[l.perturbAt] = mutated
	return nil
}

// perturbFn returns the state mutation that injects a divergence into a
// single-intersection subsystem.
func perturbFn(sub string) (func(*sim.State) error, error) {
	switch sub {
	case "engine":
		return func(st *sim.State) error {
			for i := range st.Engine.Bodies {
				if !st.Engine.Bodies[i].Exited {
					st.Engine.Bodies[i].S += 0.5
					return nil
				}
			}
			return fmt.Errorf("bisect: no live body to perturb at %v", st.Engine.Now)
		}, nil
	case "traffic":
		return func(st *sim.State) error {
			st.Traffic.NextAt += 100 * time.Millisecond
			return nil
		}, nil
	case "net":
		return func(st *sim.State) error {
			if len(st.Net.Queue) == 0 {
				return fmt.Errorf("bisect: no queued delivery to perturb at %v", st.Engine.Now)
			}
			st.Net.Queue[0].Deliver += 100 * time.Millisecond
			return nil
		}, nil
	case "protocol":
		return func(st *sim.State) error {
			st.Protocol.IM.Nonce++
			return nil
		}, nil
	case "collector":
		return func(st *sim.State) error {
			st.Collector.Events = append(st.Collector.Events,
				nwade.Event{At: st.Engine.Now, Type: nwade.EvBlockBroadcast, Info: "perturbed"})
			return nil
		}, nil
	default:
		return nil, fmt.Errorf("bisect: unknown subsystem %q (want one of %s)",
			sub, strings.Join(snap.Subsystems, ", "))
	}
}

// parsePerturb parses "<duration>:<subsystem>" — for network runs the
// subsystem may carry a region prefix ("12s:r3/engine", default r0) or
// name the backbone ("12s:backbone") — and returns the tick and the
// type-erased state mutation.
func parsePerturb(s string, network bool, regions int) (time.Duration, func(any) error, error) {
	at, sub, ok := strings.Cut(s, ":")
	if !ok {
		return 0, nil, fmt.Errorf("bisect: -perturb wants <duration>:<subsystem>, got %q", s)
	}
	tick, err := time.ParseDuration(at)
	if err != nil {
		return 0, nil, fmt.Errorf("bisect: -perturb time: %w", err)
	}
	if !network {
		fn, err := perturbFn(sub)
		if err != nil {
			return 0, nil, err
		}
		return tick, func(st any) error { return fn(st.(*sim.State)) }, nil
	}
	if sub == "backbone" {
		return tick, func(st any) error {
			ns := st.(*roadnet.State)
			if len(ns.Backbone.Queue) == 0 {
				return fmt.Errorf("bisect: no queued backbone delivery to perturb at %v", ns.Now)
			}
			ns.Backbone.Queue[0].Deliver += 100 * time.Millisecond
			return nil
		}, nil
	}
	region := 0
	if rest, ok := strings.CutPrefix(sub, "r"); ok {
		if rs, subsys, ok := strings.Cut(rest, "/"); ok {
			region, err = strconv.Atoi(rs)
			if err != nil {
				return 0, nil, fmt.Errorf("bisect: -perturb region in %q: %w", sub, err)
			}
			sub = subsys
		}
	}
	if region < 0 || region >= regions {
		return 0, nil, fmt.Errorf("bisect: -perturb region %d out of range [0,%d)", region, regions)
	}
	fn, err := perturbFn(sub)
	if err != nil {
		return 0, nil, err
	}
	return tick, func(st any) error { return fn(st.(*roadnet.State).Regions[region]) }, nil
}

// runBisect binary-searches the first tick at which the resumed run's
// state digest diverges from the continuous run's, and reports which
// subsystems differ there. Divergence is assumed persistent once it
// appears (state feeds forward), which is what makes the search valid.
func runBisect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-replay bisect", flag.ContinueOnError)
	fs.SetOutput(out)
	in := fs.String("in", "", "checkpoint file (required)")
	perturb := fs.String("perturb", "", "inject a divergence: <duration>:<subsystem> (subsystems: "+
		strings.Join(snap.Subsystems, ", ")+"; network runs accept rK/<subsystem> and backbone)")
	tracePath := fs.String("trace", "", "obs trace (JSONL) of the original run, for event context around the divergence")
	window := fs.Duration("window", 2*time.Second, "context window around the divergent tick for -trace events")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("bisect: -in is required")
	}
	c, err := cliconf.Load(*in)
	if err != nil {
		return err
	}
	cfg := c.Cfg
	base := c.Now()
	signers, err := c.Signers()
	if err != nil {
		return err
	}

	// Reference lane: the continuous run (checkpointed keys, so state
	// digests are comparable), snapshotted at the checkpoint tick.
	// Candidate lane: the checkpointed state itself, optionally
	// perturbed.
	var rp replayable
	var refBase, candBase any
	if c.IsNetwork() {
		n, err := roadnet.New(cfg, roadnet.WithSigners(signers))
		if err != nil {
			return err
		}
		for n.Now() < base {
			n.Step()
		}
		if refBase, err = n.Snapshot(); err != nil {
			return err
		}
		rp = netReplay{cfg: cfg, regions: n.Regions()}
		candBase = c.Net
	} else {
		e, err := sim.New(cfg, sim.WithSigner(signers[0]))
		if err != nil {
			return err
		}
		for e.Now() < base {
			e.Step()
		}
		if refBase, err = e.Snapshot(); err != nil {
			return err
		}
		rp = simReplay{cfg: cfg}
		candBase = c.State
	}
	ref := newLane(rp, refBase)
	cand := newLane(rp, candBase)
	if *perturb != "" {
		regions := 0
		if nr, ok := rp.(netReplay); ok {
			regions = nr.regions
		}
		tick, fn, err := parsePerturb(*perturb, c.IsNetwork(), regions)
		if err != nil {
			return err
		}
		if tick < base || tick > cfg.Duration {
			return fmt.Errorf("bisect: -perturb tick %v outside [%v, %v]", tick, base, cfg.Duration)
		}
		cand.perturbAt = tick.Truncate(cfg.Step)
		cand.perturb = fn
	}

	diverged := func(t time.Duration) ([]string, error) {
		rs, err := ref.stateAt(t)
		if err != nil {
			return nil, err
		}
		cs, err := cand.stateAt(t)
		if err != nil {
			return nil, err
		}
		rd, err := rp.digests(rs)
		if err != nil {
			return nil, err
		}
		cd, err := rp.digests(cs)
		if err != nil {
			return nil, err
		}
		var diff []string
		for _, name := range rp.subsystems() {
			if rd[name] != cd[name] {
				diff = append(diff, name)
			}
		}
		return diff, nil
	}

	n := int((cfg.Duration - base) / cfg.Step)
	tickAt := func(i int) time.Duration { return base + time.Duration(i)*cfg.Step }
	lastDiff, err := diverged(tickAt(n))
	if err != nil {
		return err
	}
	if len(lastDiff) == 0 {
		fmt.Fprintf(out, "no divergence: states identical from %v through %v (%d ticks)\n",
			base, tickAt(n), n+1)
		return nil
	}
	// Invariant: diverged(hi) is true; find the smallest such tick.
	lo, hi := 0, n
	firstDiff := lastDiff
	for lo < hi {
		mid := (lo + hi) / 2
		diff, err := diverged(tickAt(mid))
		if err != nil {
			return err
		}
		if len(diff) > 0 {
			hi, firstDiff = mid, diff
		} else {
			lo = mid + 1
		}
	}
	at := tickAt(hi)
	fmt.Fprintf(out, "divergence at tick %v (first differing state)\n", at)
	fmt.Fprintf(out, "subsystems   : %s\n", strings.Join(firstDiff, ", "))
	if *tracePath != "" {
		if err := printTraceContext(out, *tracePath, at, *window); err != nil {
			return err
		}
	}
	return nil
}

// printTraceContext prints the original run's observed events near the
// divergent tick, so the operator sees what the run was doing there.
func printTraceContext(out io.Writer, path string, at, window time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	var near []obs.Ev
	for _, ev := range tr.Events {
		t := time.Duration(ev.T)
		if t >= at-window && t <= at+window {
			near = append(near, ev)
		}
	}
	sort.SliceStable(near, func(i, j int) bool { return near[i].T < near[j].T })
	fmt.Fprintf(out, "trace events within %v of the divergence (%d):\n", window, len(near))
	const maxShown = 24
	for i, ev := range near {
		if i == maxShown {
			fmt.Fprintf(out, "  ... %d more\n", len(near)-maxShown)
			break
		}
		fmt.Fprintf(out, "  %-10v %-22s actor=%d subject=%d %s\n",
			time.Duration(ev.T).Round(time.Millisecond), ev.Type, ev.Actor, ev.Subject, ev.Info)
	}
	return nil
}
