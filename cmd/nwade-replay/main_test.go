package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nwade/internal/attack"
	"nwade/internal/chain"
	"nwade/internal/intersection"
	"nwade/internal/sim"
	"nwade/internal/snap"
)

var (
	keyOnce sync.Once
	key     *chain.Signer
)

func testSigner(t *testing.T) *chain.Signer {
	t.Helper()
	keyOnce.Do(func() {
		s, err := chain.NewSigner(1024)
		if err != nil {
			t.Fatalf("NewSigner: %v", err)
		}
		key = s
	})
	return key
}

// writeCheckpoint runs a small reference scenario to the given tick and
// checkpoints it, returning the file path.
func writeCheckpoint(t *testing.T, at time.Duration) string {
	t.Helper()
	inter, err := intersection.Build(intersection.KindCross4, intersection.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := attack.ByName("V1", 4*time.Second)
	if !ok {
		t.Fatal("scenario V1 missing")
	}
	cfg := sim.Scenario{
		Inter: inter, Duration: 10 * time.Second, RatePerMin: 80,
		Seed: 7, Attack: sc, NWADE: true, KeyBits: 1024,
	}
	e, err := sim.New(cfg, sim.WithSigner(testSigner(t)))
	if err != nil {
		t.Fatal(err)
	}
	for e.Now() < at {
		e.Step()
	}
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := snap.SpecFromScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.snap")
	if err := snap.WriteFile(path, spec, st); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResumeAndCheck(t *testing.T) {
	ckpt := writeCheckpoint(t, 6*time.Second)

	var buf bytes.Buffer
	if err := run([]string{"resume", "-in", ckpt}, &buf); err != nil {
		t.Fatalf("resume: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "resumed at 6s") || !strings.Contains(buf.String(), "digest=") {
		t.Errorf("resume output missing expected lines:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"check", "-in", ckpt}, &buf); err != nil {
		t.Fatalf("check: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "check: digests match") {
		t.Errorf("check output:\n%s", buf.String())
	}
}

func TestBisectCleanRun(t *testing.T) {
	ckpt := writeCheckpoint(t, 6*time.Second)
	var buf bytes.Buffer
	if err := run([]string{"bisect", "-in", ckpt}, &buf); err != nil {
		t.Fatalf("bisect: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no divergence") {
		t.Errorf("clean bisect should find no divergence:\n%s", buf.String())
	}
}

// TestBisectLocalizesPerturbation is the acceptance property: an
// injected divergence is localized to its exact tick and subsystem.
func TestBisectLocalizesPerturbation(t *testing.T) {
	ckpt := writeCheckpoint(t, 5*time.Second)
	for _, tc := range []struct{ perturb, tick, subsystem string }{
		{"7.5s:protocol", "7.5s", "protocol"},
		{"6s:traffic", "6s", "traffic"},
		{"8s:collector", "8s", "collector"},
	} {
		var buf bytes.Buffer
		if err := run([]string{"bisect", "-in", ckpt, "-perturb", tc.perturb}, &buf); err != nil {
			t.Fatalf("bisect -perturb %s: %v\n%s", tc.perturb, err, buf.String())
		}
		got := buf.String()
		if !strings.Contains(got, "divergence at tick "+tc.tick) {
			t.Errorf("perturb %s: wrong tick:\n%s", tc.perturb, got)
		}
		if !strings.Contains(got, tc.subsystem) {
			t.Errorf("perturb %s: subsystem not attributed:\n%s", tc.perturb, got)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"resume"},
		{"check", "-in", "/does/not/exist.snap"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	ckpt := writeCheckpoint(t, 6*time.Second)
	for _, p := range []string{"nonsense", "6s:frob", "1s:protocol", "99s:protocol"} {
		var buf bytes.Buffer
		if err := run([]string{"bisect", "-in", ckpt, "-perturb", p}, &buf); err == nil {
			t.Errorf("bisect -perturb %q succeeded, want error", p)
		}
	}
}
