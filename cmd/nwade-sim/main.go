// Command nwade-sim runs one NWADE simulation round from the command
// line and reports what happened: traffic counts, protocol events, and
// network load.
//
// Examples:
//
//	nwade-sim -intersection cross4 -density 80 -duration 60s -scenario V3
//	nwade-sim -intersection roundabout3 -scenario IM -events
//	nwade-sim -scenario benign -nwade=false   # plain AIM baseline
//	nwade-sim -scenario V5 -rounds 8 -workers 4   # multi-seed replicas
//	nwade-sim -scenario IM -faults partition -retrans   # degraded network
//	nwade-sim -scenario V1 -trace run.jsonl   # protocol-event trace
//	nwade-sim -scenario V1 -obs -pprof cpu.pb # counters + CPU profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"nwade/internal/attack"
	"nwade/internal/eval"
	"nwade/internal/intersection"
	"nwade/internal/metrics"
	"nwade/internal/obs"
	"nwade/internal/sim"
	"nwade/internal/snap"
	"nwade/internal/vnet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-sim:", err)
		os.Exit(1)
	}
}

// kindByName maps CLI names to intersection kinds.
var kindByName = map[string]intersection.Kind{
	"roundabout3": intersection.KindRoundabout3,
	"cross4":      intersection.KindCross4,
	"irregular5":  intersection.KindIrregular5,
	"cfi4":        intersection.KindCFI4,
	"ddi4":        intersection.KindDDI4,
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		kindName  = fs.String("intersection", "cross4", "layout: roundabout3, cross4, irregular5, cfi4, ddi4")
		density   = fs.Float64("density", 80, "arrival rate in vehicles per minute (paper: 20-120)")
		duration  = fs.Duration("duration", 60*time.Second, "simulated time span")
		seed      = fs.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		scenario  = fs.String("scenario", "benign", "attack setting: benign, V1, V2, V3, V5, V10, IM, IM_V1..IM_V10")
		attackAt  = fs.Duration("attack-at", 25*time.Second, "when the compromise activates")
		nwadeOn   = fs.Bool("nwade", true, "enable the NWADE mechanism (false = plain AIM baseline)")
		events    = fs.Bool("events", false, "print the protocol event log")
		keyBits   = fs.Int("keybits", 1024, "IM signing key size (paper: 2048)")
		rounds    = fs.Int("rounds", 1, "replicas with consecutive seeds (seed, seed+1, ...)")
		workers   = fs.Int("workers", 0, "concurrent replicas when rounds > 1 (0 = GOMAXPROCS)")
		tickWork  = fs.Int("tick-workers", 1, "in-run worker pool sharding each tick across cores (results are bit-identical for any value)")
		faults    = fs.String("faults", "", "network fault profile ("+strings.Join(vnet.FaultProfileNames(), ", ")+")")
		retrans   = fs.Bool("retrans", false, "enable the protocol retransmission layer (pair with -faults)")
		traceOut  = fs.String("trace", "", "write a JSONL protocol-event trace to this file (inspect with nwade-inspect trace)")
		obsRep    = fs.Bool("obs", false, "print the observability report (counters, histograms, spans) after the run")
		pprofOut  = fs.String("pprof", "", "write a CPU profile to this file (enables wall-clock span timing)")
		ckptEvery = fs.Duration("checkpoint-every", 0, "write a checkpoint every interval of simulated time (single run only; resume with -resume or nwade-replay)")
		ckptDir   = fs.String("checkpoint-dir", ".", "directory for -checkpoint-every files (ckpt-<time>.snap)")
		resume    = fs.String("resume", "", "resume from a checkpoint file; the checkpoint's spec replaces the configuration flags")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*ckptEvery > 0 || *resume != "") && *rounds > 1 {
		return fmt.Errorf("-checkpoint-every/-resume apply to single runs, not -rounds %d", *rounds)
	}

	kind, ok := kindByName[*kindName]
	if !ok {
		return fmt.Errorf("unknown intersection %q", *kindName)
	}
	inter, err := intersection.Build(kind, intersection.Config{})
	if err != nil {
		return err
	}
	sc, ok := attack.ByName(*scenario, *attackAt)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	fc, err := vnet.ParseFaultProfile(*faults)
	if err != nil {
		return err
	}

	// Observability sink: nil unless one of -trace/-obs/-pprof asks for
	// it, so the default run pays only nil checks.
	var sink *obs.Sink
	if *traceOut != "" || *obsRep || *pprofOut != "" {
		o := obs.Options{Profile: *pprofOut != ""}
		if *traceOut != "" {
			tf, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer tf.Close()
			o.Trace = tf
		}
		sink = obs.New(o)
		sink.WriteMeta(obs.Meta{
			Tool:         "nwade-sim",
			Scenario:     sc.Name,
			Seed:         *seed,
			Intersection: inter.Name,
			DurationNS:   int64(*duration),
		})
	}
	if *pprofOut != "" {
		pf, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	mkConfig := func(seed int64) sim.Config {
		cfg := sim.Config{
			Inter:      inter,
			Duration:   *duration,
			RatePerMin: *density,
			Seed:       seed,
			Scenario:   sc,
			NWADE:      *nwadeOn,
			KeyBits:    *keyBits,
			Resilience: *retrans,
			Workers:    *tickWork,
		}
		cfg.Net.Faults = fc
		return cfg
	}
	degraded := fc.Enabled() || *retrans
	if *rounds > 1 {
		if *traceOut != "" && *workers != 1 {
			// Concurrent replicas would interleave their trace records.
			fmt.Fprintln(out, "note: -trace forces -workers 1")
			*workers = 1
		}
		err := runReplicas(out, replicaRun{
			MkConfig: mkConfig,
			Rounds:   *rounds,
			Workers:  *workers,
			BaseSeed: *seed,
			Inter:    inter.Name,
			Scenario: sc.Name,
			Density:  *density,
			Duration: *duration,
			NWADE:    *nwadeOn,
			Faults:   *faults,
			Retrans:  *retrans,
			Obs:      sink,
		})
		if err != nil {
			return err
		}
		return finishObs(out, sink, *obsRep, *traceOut)
	}
	simOpts := []sim.Option{}
	if sink != nil {
		simOpts = append(simOpts, sim.WithObs(sink))
	}
	cfg := mkConfig(*seed)
	var engine *sim.Engine
	if *resume != "" {
		spec, st, err := snap.ReadFile(*resume)
		if err != nil {
			return err
		}
		cfg, err = spec.BuildConfig()
		if err != nil {
			return err
		}
		inter, sc = cfg.Inter, cfg.Scenario
		engine, err = sim.Restore(cfg, st, simOpts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed      : %s at %v\n", *resume, st.Engine.Now)
	} else {
		engine, err = sim.New(cfg, simOpts...)
		if err != nil {
			return err
		}
	}
	var res metrics.RunResult
	if *ckptEvery > 0 {
		res, err = runWithCheckpoints(out, engine, cfg, *ckptEvery, *ckptDir)
		if err != nil {
			return err
		}
	} else {
		res = engine.Run()
	}

	fmt.Fprintf(out, "intersection : %s\n", inter.Name)
	fmt.Fprintf(out, "scenario     : %s (attack at %v)\n", sc.Name, sc.AttackAt)
	// Read from cfg, not the flags: after -resume the run parameters
	// come from the checkpoint's spec, not the command line.
	fmt.Fprintf(out, "density      : %g veh/min for %v (seed %d, NWADE %v)\n", cfg.RatePerMin, cfg.Duration, cfg.Seed, cfg.NWADE)
	if degraded {
		fmt.Fprintf(out, "faults       : %s (retrans %v): dropped %d, duplicated %d, retransmits %d\n",
			profileName(*faults), *retrans, res.Net.FaultDropped, res.Net.Duplicated, res.Retransmits)
	}
	fmt.Fprintf(out, "spawned      : %d\n", res.Spawned)
	fmt.Fprintf(out, "exited       : %d (%.1f veh/min)\n", res.Exited, res.Throughput())
	fmt.Fprintf(out, "collisions   : %d\n", res.Collisions)
	if roles := engine.Roles(); len(roles.All) > 0 {
		fmt.Fprintf(out, "coalition    : violator=%v falseReporters=%v\n", roles.Violator, roles.FalseReporters)
	}

	fmt.Fprintln(out, "\nnetwork packets by kind:")
	kinds := make([]string, 0, len(res.Net.Packets))
	for k := range res.Net.Packets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(out, "  %-12s %6d (%d bytes)\n", k, res.Net.Packets[k], res.Net.Bytes[k])
	}
	fmt.Fprintf(out, "  %-12s %6d\n", "TOTAL", res.Net.TotalPackets())

	if *events {
		fmt.Fprintln(out, "\nprotocol events:")
		for _, e := range res.Collector.Events() {
			actor := "IM"
			if e.Actor != 0 {
				actor = e.Actor.String()
			}
			fmt.Fprintf(out, "  %-10v %-22v %-5s", e.At.Round(time.Millisecond), e.Type, actor)
			if e.Subject != 0 {
				fmt.Fprintf(out, " subject=%v", e.Subject)
			}
			if e.Info != "" {
				fmt.Fprintf(out, "  %s", e.Info)
			}
			fmt.Fprintln(out)
		}
	}
	return finishObs(out, sink, *obsRep, *traceOut)
}

// finishObs seals the sink (writing the trace's sum record) and prints
// the report when -obs asked for it. Safe on a nil sink.
func finishObs(out io.Writer, sink *obs.Sink, report bool, tracePath string) error {
	if sink == nil {
		return nil
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if report {
		fmt.Fprintln(out)
		sink.WriteReport(out)
	}
	if tracePath != "" {
		fmt.Fprintf(out, "wrote trace %s\n", tracePath)
	}
	return nil
}

// profileName renders a -faults value for display.
func profileName(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

// replicaRun bundles what a multi-seed replica sweep needs: the round
// factory plus the already-resolved labels the summary header prints.
// A typed struct instead of a positional parameter list, so new knobs
// (fault profiles, retransmission) ride in as fields.
type replicaRun struct {
	MkConfig func(int64) sim.Config
	Rounds   int
	Workers  int
	BaseSeed int64
	Inter    string
	Scenario string
	Density  float64
	Duration time.Duration
	NWADE    bool
	// Faults is the -faults profile name ("" = clean network) and
	// Retrans whether the retransmission layer was on; both only affect
	// the printed summary (MkConfig already applied them).
	Faults  string
	Retrans bool
	// Obs, when non-nil, is installed into every replica (counters
	// aggregate across the sweep; run caps Workers at 1 when tracing).
	Obs *obs.Sink
}

// runReplicas executes the replica sweep across the eval worker pool and
// prints per-round and aggregate traffic summaries.
func runReplicas(out io.Writer, rr replicaRun) error {
	seeds := make([]int64, rr.Rounds)
	for i := range seeds {
		seeds[i] = rr.BaseSeed + int64(i)
	}
	start := time.Now()
	results, err := eval.RunCells(rr.Workers, seeds, func(seed int64) (metrics.RunResult, error) {
		opts := []sim.Option{}
		if rr.Obs != nil {
			opts = append(opts, sim.WithObs(rr.Obs))
		}
		engine, err := sim.New(rr.MkConfig(seed), opts...)
		if err != nil {
			return metrics.RunResult{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		return engine.Run(), nil
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Fprintf(out, "intersection : %s\n", rr.Inter)
	fmt.Fprintf(out, "scenario     : %s\n", rr.Scenario)
	fmt.Fprintf(out, "density      : %g veh/min for %v (NWADE %v)\n", rr.Density, rr.Duration, rr.NWADE)
	if rr.Faults != "" || rr.Retrans {
		fmt.Fprintf(out, "faults       : %s (retrans %v)\n", profileName(rr.Faults), rr.Retrans)
	}
	fmt.Fprintf(out, "replicas     : %d (seeds %d..%d, workers=%d, %v wall)\n\n",
		rr.Rounds, rr.BaseSeed, seeds[rr.Rounds-1], rr.Workers, wall.Round(time.Millisecond))
	fmt.Fprintf(out, "  %-6s %8s %8s %12s %11s\n", "seed", "spawned", "exited", "veh/min", "collisions")
	var spawned, exited, collisions int
	var dropped, duplicated, retransmits int
	var thr float64
	for i, res := range results {
		fmt.Fprintf(out, "  %-6d %8d %8d %12.1f %11d\n", seeds[i], res.Spawned, res.Exited, res.Throughput(), res.Collisions)
		spawned += res.Spawned
		exited += res.Exited
		collisions += res.Collisions
		thr += res.Throughput()
		dropped += res.Net.FaultDropped
		duplicated += res.Net.Duplicated
		retransmits += res.Retransmits
	}
	n := float64(rr.Rounds)
	fmt.Fprintf(out, "  %-6s %8.1f %8.1f %12.1f %11.1f\n", "mean",
		float64(spawned)/n, float64(exited)/n, thr/n, float64(collisions)/n)
	if rr.Faults != "" || rr.Retrans {
		fmt.Fprintf(out, "\n  fault-dropped %d, duplicated %d, retransmits %d (totals)\n",
			dropped, duplicated, retransmits)
	}
	return nil
}

// runWithCheckpoints drives the engine to its duration, writing a
// checkpoint (ckpt-<time>.snap) at every multiple of the interval. The
// result is identical to engine.Run(): checkpointing observes state at
// tick boundaries without perturbing it.
func runWithCheckpoints(out io.Writer, e *sim.Engine, cfg sim.Config, every time.Duration, dir string) (metrics.RunResult, error) {
	spec, err := snap.SpecFromConfig(cfg)
	if err != nil {
		return metrics.RunResult{}, err
	}
	duration := cfg.Normalize().Duration
	for next := e.Now() + every; next < duration; next += every {
		for e.Now() < next {
			e.Step()
		}
		path := filepath.Join(dir, fmt.Sprintf("ckpt-%s.snap", e.Now()))
		st, err := e.Snapshot()
		if err != nil {
			return metrics.RunResult{}, err
		}
		if err := snap.WriteFile(path, spec, st); err != nil {
			return metrics.RunResult{}, err
		}
		fmt.Fprintf(out, "checkpoint   : %s\n", path)
	}
	return e.Run(), nil
}
