// Command nwade-sim runs one NWADE simulation round from the command
// line and reports what happened: traffic counts, protocol events, and
// network load.
//
// Examples:
//
//	nwade-sim -intersection cross4 -density 80 -duration 60s -scenario V3
//	nwade-sim -intersection roundabout3 -scenario IM -events
//	nwade-sim -scenario benign -nwade=false   # plain AIM baseline
//	nwade-sim -scenario V5 -rounds 8 -workers 4   # multi-seed replicas
//	nwade-sim -scenario IM -faults partition -retrans   # degraded network
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nwade/internal/attack"
	"nwade/internal/eval"
	"nwade/internal/intersection"
	"nwade/internal/metrics"
	"nwade/internal/sim"
	"nwade/internal/vnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-sim:", err)
		os.Exit(1)
	}
}

// kindByName maps CLI names to intersection kinds.
var kindByName = map[string]intersection.Kind{
	"roundabout3": intersection.KindRoundabout3,
	"cross4":      intersection.KindCross4,
	"irregular5":  intersection.KindIrregular5,
	"cfi4":        intersection.KindCFI4,
	"ddi4":        intersection.KindDDI4,
}

func run() error {
	var (
		kindName = flag.String("intersection", "cross4", "layout: roundabout3, cross4, irregular5, cfi4, ddi4")
		density  = flag.Float64("density", 80, "arrival rate in vehicles per minute (paper: 20-120)")
		duration = flag.Duration("duration", 60*time.Second, "simulated time span")
		seed     = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		scenario = flag.String("scenario", "benign", "attack setting: benign, V1, V2, V3, V5, V10, IM, IM_V1..IM_V10")
		attackAt = flag.Duration("attack-at", 25*time.Second, "when the compromise activates")
		nwadeOn  = flag.Bool("nwade", true, "enable the NWADE mechanism (false = plain AIM baseline)")
		events   = flag.Bool("events", false, "print the protocol event log")
		keyBits  = flag.Int("keybits", 1024, "IM signing key size (paper: 2048)")
		rounds   = flag.Int("rounds", 1, "replicas with consecutive seeds (seed, seed+1, ...)")
		workers  = flag.Int("workers", 0, "concurrent replicas when rounds > 1 (0 = GOMAXPROCS)")
		faults   = flag.String("faults", "", "network fault profile ("+strings.Join(vnet.FaultProfileNames(), ", ")+")")
		retrans  = flag.Bool("retrans", false, "enable the protocol retransmission layer (pair with -faults)")
	)
	flag.Parse()

	kind, ok := kindByName[*kindName]
	if !ok {
		return fmt.Errorf("unknown intersection %q", *kindName)
	}
	inter, err := intersection.Build(kind, intersection.Config{})
	if err != nil {
		return err
	}
	sc, ok := attack.ByName(*scenario, *attackAt)
	if !ok {
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	fc, err := vnet.ParseFaultProfile(*faults)
	if err != nil {
		return err
	}
	mkConfig := func(seed int64) sim.Config {
		cfg := sim.Config{
			Inter:      inter,
			Duration:   *duration,
			RatePerMin: *density,
			Seed:       seed,
			Scenario:   sc,
			NWADE:      *nwadeOn,
			KeyBits:    *keyBits,
			Resilience: *retrans,
		}
		cfg.Net.Faults = fc
		return cfg
	}
	degraded := fc.Enabled() || *retrans
	if *rounds > 1 {
		return runReplicas(replicaRun{
			MkConfig: mkConfig,
			Rounds:   *rounds,
			Workers:  *workers,
			BaseSeed: *seed,
			Inter:    inter.Name,
			Scenario: sc.Name,
			Density:  *density,
			Duration: *duration,
			NWADE:    *nwadeOn,
			Faults:   *faults,
			Retrans:  *retrans,
		})
	}
	engine, err := sim.New(mkConfig(*seed))
	if err != nil {
		return err
	}
	res := engine.Run()

	fmt.Printf("intersection : %s\n", inter.Name)
	fmt.Printf("scenario     : %s (attack at %v)\n", sc.Name, sc.AttackAt)
	fmt.Printf("density      : %g veh/min for %v (seed %d, NWADE %v)\n", *density, *duration, *seed, *nwadeOn)
	if degraded {
		fmt.Printf("faults       : %s (retrans %v): dropped %d, duplicated %d, retransmits %d\n",
			profileName(*faults), *retrans, res.Net.FaultDropped, res.Net.Duplicated, res.Retransmits)
	}
	fmt.Printf("spawned      : %d\n", res.Spawned)
	fmt.Printf("exited       : %d (%.1f veh/min)\n", res.Exited, res.Throughput())
	fmt.Printf("collisions   : %d\n", res.Collisions)
	if roles := engine.Roles(); len(roles.All) > 0 {
		fmt.Printf("coalition    : violator=%v falseReporters=%v\n", roles.Violator, roles.FalseReporters)
	}

	fmt.Println("\nnetwork packets by kind:")
	kinds := make([]string, 0, len(res.Net.Packets))
	for k := range res.Net.Packets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  %-12s %6d (%d bytes)\n", k, res.Net.Packets[k], res.Net.Bytes[k])
	}
	fmt.Printf("  %-12s %6d\n", "TOTAL", res.Net.TotalPackets())

	if *events {
		fmt.Println("\nprotocol events:")
		for _, e := range res.Collector.Events() {
			actor := "IM"
			if e.Actor != 0 {
				actor = e.Actor.String()
			}
			fmt.Printf("  %-10v %-22v %-5s", e.At.Round(time.Millisecond), e.Type, actor)
			if e.Subject != 0 {
				fmt.Printf(" subject=%v", e.Subject)
			}
			if e.Info != "" {
				fmt.Printf("  %s", e.Info)
			}
			fmt.Println()
		}
	}
	return nil
}

// profileName renders a -faults value for display.
func profileName(name string) string {
	if name == "" {
		return "none"
	}
	return name
}

// replicaRun bundles what a multi-seed replica sweep needs: the round
// factory plus the already-resolved labels the summary header prints.
// A typed struct instead of a positional parameter list, so new knobs
// (fault profiles, retransmission) ride in as fields.
type replicaRun struct {
	MkConfig func(int64) sim.Config
	Rounds   int
	Workers  int
	BaseSeed int64
	Inter    string
	Scenario string
	Density  float64
	Duration time.Duration
	NWADE    bool
	// Faults is the -faults profile name ("" = clean network) and
	// Retrans whether the retransmission layer was on; both only affect
	// the printed summary (MkConfig already applied them).
	Faults  string
	Retrans bool
}

// runReplicas executes the replica sweep across the eval worker pool and
// prints per-round and aggregate traffic summaries.
func runReplicas(rr replicaRun) error {
	seeds := make([]int64, rr.Rounds)
	for i := range seeds {
		seeds[i] = rr.BaseSeed + int64(i)
	}
	start := time.Now()
	results, err := eval.RunCells(rr.Workers, seeds, func(seed int64) (metrics.RunResult, error) {
		engine, err := sim.New(rr.MkConfig(seed))
		if err != nil {
			return metrics.RunResult{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		return engine.Run(), nil
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("intersection : %s\n", rr.Inter)
	fmt.Printf("scenario     : %s\n", rr.Scenario)
	fmt.Printf("density      : %g veh/min for %v (NWADE %v)\n", rr.Density, rr.Duration, rr.NWADE)
	if rr.Faults != "" || rr.Retrans {
		fmt.Printf("faults       : %s (retrans %v)\n", profileName(rr.Faults), rr.Retrans)
	}
	fmt.Printf("replicas     : %d (seeds %d..%d, workers=%d, %v wall)\n\n",
		rr.Rounds, rr.BaseSeed, seeds[rr.Rounds-1], rr.Workers, wall.Round(time.Millisecond))
	fmt.Printf("  %-6s %8s %8s %12s %11s\n", "seed", "spawned", "exited", "veh/min", "collisions")
	var spawned, exited, collisions int
	var dropped, duplicated, retransmits int
	var thr float64
	for i, res := range results {
		fmt.Printf("  %-6d %8d %8d %12.1f %11d\n", seeds[i], res.Spawned, res.Exited, res.Throughput(), res.Collisions)
		spawned += res.Spawned
		exited += res.Exited
		collisions += res.Collisions
		thr += res.Throughput()
		dropped += res.Net.FaultDropped
		duplicated += res.Net.Duplicated
		retransmits += res.Retransmits
	}
	n := float64(rr.Rounds)
	fmt.Printf("  %-6s %8.1f %8.1f %12.1f %11.1f\n", "mean",
		float64(spawned)/n, float64(exited)/n, thr/n, float64(collisions)/n)
	if rr.Faults != "" || rr.Retrans {
		fmt.Printf("\n  fault-dropped %d, duplicated %d, retransmits %d (totals)\n",
			dropped, duplicated, retransmits)
	}
	return nil
}
