// Command nwade-sim runs one NWADE simulation round from the command
// line and reports what happened: traffic counts, protocol events, and
// network load.
//
// Examples:
//
//	nwade-sim -intersection cross4 -density 80 -duration 60s -scenario V3
//	nwade-sim -intersection roundabout3 -scenario IM -events
//	nwade-sim -scenario benign -nwade=false   # plain AIM baseline
//	nwade-sim -scenario V5 -rounds 8 -workers 4   # multi-seed replicas
//	nwade-sim -scenario IM -faults partition -retrans   # degraded network
//	nwade-sim -scenario V1 -trace run.jsonl   # protocol-event trace
//	nwade-sim -scenario V1 -obs -pprof cpu.pb # counters + CPU profile
//	nwade-sim -network grid:3x3 -scenario V3 -attack-region 4   # city grid
//	nwade-sim -network corridor:4 -intersection mix -tick-workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"time"

	"nwade/internal/cliconf"
	"nwade/internal/eval"
	"nwade/internal/metrics"
	"nwade/internal/nwade"
	"nwade/internal/obs"
	"nwade/internal/roadnet"
	"nwade/internal/sim"
	"nwade/internal/snap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nwade-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nwade-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	cf := cliconf.Register(fs)
	var (
		events    = fs.Bool("events", false, "print the protocol event log")
		rounds    = fs.Int("rounds", 1, "replicas with consecutive seeds (seed, seed+1, ...)")
		workers   = fs.Int("workers", 0, "concurrent replicas when rounds > 1 (0 = GOMAXPROCS)")
		traceOut  = fs.String("trace", "", "write a JSONL protocol-event trace to this file (inspect with nwade-inspect trace)")
		obsRep    = fs.Bool("obs", false, "print the observability report (counters, histograms, spans) after the run")
		pprofOut  = fs.String("pprof", "", "write a CPU profile to this file (enables wall-clock span timing)")
		ckptEvery = fs.Duration("checkpoint-every", 0, "write a checkpoint every interval of simulated time (single run only; resume with -resume or nwade-replay)")
		ckptDir   = fs.String("checkpoint-dir", ".", "directory for -checkpoint-every files (ckpt-<time>.snap)")
		resume    = fs.String("resume", "", "resume from a checkpoint file; the checkpoint's spec replaces the configuration flags")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*ckptEvery > 0 || *resume != "") && *rounds > 1 {
		return fmt.Errorf("-checkpoint-every/-resume apply to single runs, not -rounds %d", *rounds)
	}
	cfg, err := cf.Build()
	if err != nil {
		return err
	}
	if *resume != "" {
		// The checkpoint decides single vs network; peek before routing.
		c, err := cliconf.Load(*resume)
		if err != nil {
			return err
		}
		if c.IsNetwork() {
			return runNetwork(out, c.Cfg, c, *events, *ckptEvery, *ckptDir)
		}
		return runSingle(out, c.Cfg, c, singleRun{
			Events: *events, TraceOut: *traceOut, ObsRep: *obsRep, PprofOut: *pprofOut,
			CkptEvery: *ckptEvery, CkptDir: *ckptDir, ResumePath: *resume,
		})
	}
	if cfg.IsNetwork() {
		if *rounds > 1 {
			return fmt.Errorf("-rounds applies to single-intersection runs, not -network %s", cfg.Network)
		}
		if *traceOut != "" || *obsRep || *pprofOut != "" {
			return fmt.Errorf("-trace/-obs/-pprof are not supported with -network yet")
		}
		return runNetwork(out, cfg, nil, *events, *ckptEvery, *ckptDir)
	}
	if *rounds > 1 {
		return runRounds(out, cfg, cf, *rounds, *workers, *traceOut, *obsRep)
	}
	return runSingle(out, cfg, nil, singleRun{
		Events: *events, TraceOut: *traceOut, ObsRep: *obsRep, PprofOut: *pprofOut,
		CkptEvery: *ckptEvery, CkptDir: *ckptDir,
	})
}

// singleRun bundles the tool-specific knobs of one single-intersection
// run; the scenario itself comes from cliconf (or a checkpoint spec).
type singleRun struct {
	Events     bool
	TraceOut   string
	ObsRep     bool
	PprofOut   string
	CkptEvery  time.Duration
	CkptDir    string
	ResumePath string
}

// newSink builds the observability sink when any of -trace/-obs/-pprof
// asks for one (nil otherwise, so the default run pays only nil checks).
func newSink(cfg sim.Scenario, sr singleRun) (*obs.Sink, func(), error) {
	if sr.TraceOut == "" && !sr.ObsRep && sr.PprofOut == "" {
		return nil, func() {}, nil
	}
	o := obs.Options{Profile: sr.PprofOut != ""}
	closers := []func(){}
	if sr.TraceOut != "" {
		tf, err := os.Create(sr.TraceOut)
		if err != nil {
			return nil, nil, err
		}
		closers = append(closers, func() { tf.Close() })
		o.Trace = tf
	}
	sink := obs.New(o)
	sink.WriteMeta(obs.Meta{
		Tool:         "nwade-sim",
		Scenario:     cfg.Attack.Name,
		Seed:         cfg.Seed,
		Intersection: cfg.Intersection,
		DurationNS:   int64(cfg.Duration),
	})
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	return sink, cleanup, nil
}

// runSingle executes one single-intersection run, fresh or resumed.
func runSingle(out io.Writer, cfg sim.Scenario, ckpt *cliconf.Checkpoint, sr singleRun) error {
	cfg = cfg.Normalize()
	sink, cleanup, err := newSink(cfg, sr)
	if err != nil {
		return err
	}
	defer cleanup()
	if sr.PprofOut != "" {
		pf, err := os.Create(sr.PprofOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	simOpts := []sim.Option{}
	if sink != nil {
		simOpts = append(simOpts, sim.WithObs(sink))
	}
	var engine *sim.Engine
	if ckpt != nil {
		engine, err = sim.Restore(cfg, ckpt.State, simOpts...)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed      : %s at %v\n", sr.ResumePath, ckpt.Now())
	} else {
		engine, err = sim.New(cfg, simOpts...)
		if err != nil {
			return err
		}
	}
	var res metrics.RunResult
	if sr.CkptEvery > 0 {
		res, err = runWithCheckpoints(out, engine, cfg, sr.CkptEvery, sr.CkptDir)
		if err != nil {
			return err
		}
	} else {
		res = engine.Run()
	}

	fmt.Fprintf(out, "intersection : %s\n", cfg.Intersection)
	fmt.Fprintf(out, "scenario     : %s (attack at %v)\n", cfg.Attack.Name, cfg.Attack.AttackAt)
	fmt.Fprintf(out, "density      : %g veh/min for %v (seed %d, NWADE %v)\n", cfg.RatePerMin, cfg.Duration, cfg.Seed, cfg.NWADE)
	if cfg.Net.Faults.Enabled() || cfg.Resilience {
		fmt.Fprintf(out, "faults       : enabled=%v (retrans %v): dropped %d, duplicated %d, retransmits %d\n",
			cfg.Net.Faults.Enabled(), cfg.Resilience, res.Net.FaultDropped, res.Net.Duplicated, res.Retransmits)
	}
	fmt.Fprintf(out, "spawned      : %d\n", res.Spawned)
	fmt.Fprintf(out, "exited       : %d (%.1f veh/min)\n", res.Exited, res.Throughput())
	fmt.Fprintf(out, "collisions   : %d\n", res.Collisions)
	if roles := engine.Roles(); len(roles.All) > 0 {
		fmt.Fprintf(out, "coalition    : violator=%v falseReporters=%v\n", roles.Violator, roles.FalseReporters)
	}
	printPackets(out, res.Net.Packets, res.Net.Bytes, res.Net.TotalPackets())
	if sr.Events {
		fmt.Fprintln(out, "\nprotocol events:")
		printEvents(out, "  ", res.Collector.Events())
	}
	return finishObs(out, sink, sr.ObsRep, sr.TraceOut)
}

// runNetwork executes a multi-intersection run, fresh or resumed from a
// network checkpoint.
func runNetwork(out io.Writer, cfg sim.Scenario, ckpt *cliconf.Checkpoint, events bool, ckptEvery time.Duration, ckptDir string) error {
	cfg = cfg.Normalize()
	var n *roadnet.Network
	var err error
	if ckpt != nil {
		n, err = roadnet.Restore(cfg, ckpt.Net)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "resumed      : network at %v\n", ckpt.Now())
	} else {
		n, err = roadnet.New(cfg)
		if err != nil {
			return err
		}
	}
	if ckptEvery > 0 {
		if err := runNetworkCheckpoints(out, n, cfg, ckptEvery, ckptDir); err != nil {
			return err
		}
	}
	results := n.Run()

	topo := n.Topology()
	fmt.Fprintf(out, "network      : %s (%dx%d, %d regions, layout %s)\n",
		cfg.Network, topo.Rows, topo.Cols, len(topo.Regions), cfg.Intersection)
	fmt.Fprintf(out, "scenario     : %s (attack at %v in region %d)\n", cfg.Attack.Name, cfg.Attack.AttackAt, cfg.AttackRegion)
	fmt.Fprintf(out, "density      : %g veh/min for %v (seed %d, NWADE %v, workers %d)\n",
		cfg.RatePerMin, cfg.Duration, cfg.Seed, cfg.NWADE, cfg.Workers)
	fmt.Fprintf(out, "\n  %-7s %-12s %8s %8s %11s\n", "region", "layout", "spawned", "exited", "collisions")
	var spawned, exited, collisions int
	for i, res := range results {
		fmt.Fprintf(out, "  %-7d %-12s %8d %8d %11d\n",
			i, topo.Regions[i].Inter.Name, res.Spawned, res.Exited, res.Collisions)
		spawned += res.Spawned
		exited += res.Exited
		collisions += res.Collisions
	}
	fmt.Fprintf(out, "  %-7s %-12s %8d %8d %11d\n", "TOTAL", "", spawned, exited, collisions)
	st := n.Stats()
	fmt.Fprintf(out, "\nhandoffs     : %d (boundary exits %d)\n", st.Handoffs, st.BoundaryExits)
	fmt.Fprintf(out, "watch        : %d reports, %d relays, %d advisories\n", st.Reports, st.ReportRelays, st.Advisories)
	fmt.Fprintf(out, "head exchange: %d beacons, %d mismatches\n", st.HeadBeacons, st.HeadMismatches)
	bb := n.BackboneStats()
	printPackets(out, bb.Packets, bb.Bytes, bb.TotalPackets())
	fmt.Fprintf(out, "digest       : %s\n", n.Digest())
	if events {
		for i, res := range results {
			evs := res.Collector.Events()
			if len(evs) == 0 {
				continue
			}
			fmt.Fprintf(out, "\nregion %d protocol events:\n", i)
			printEvents(out, "  ", evs)
		}
	}
	return nil
}

// runNetworkCheckpoints drives the network up to (but not through) its
// duration, writing a checkpoint at every multiple of the interval; the
// caller's Run finishes the remainder.
func runNetworkCheckpoints(out io.Writer, n *roadnet.Network, cfg sim.Scenario, every time.Duration, dir string) error {
	spec, err := snap.SpecFromScenario(cfg)
	if err != nil {
		return err
	}
	for next := n.Now() + every; next < cfg.Duration; next += every {
		for n.Now() < next {
			n.Step()
		}
		st, err := n.Snapshot()
		if err != nil {
			return err
		}
		raw, err := st.Encode()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("ckpt-%s.snap", n.Now()))
		if err := snap.WriteNetFile(path, spec, raw); err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint   : %s\n", path)
	}
	return nil
}

// printPackets renders a packets-by-kind table.
func printPackets(out io.Writer, packets map[string]int, bytes map[string]int, total int) {
	fmt.Fprintln(out, "\nnetwork packets by kind:")
	kinds := make([]string, 0, len(packets))
	for k := range packets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(out, "  %-12s %6d (%d bytes)\n", k, packets[k], bytes[k])
	}
	fmt.Fprintf(out, "  %-12s %6d\n", "TOTAL", total)
}

// printEvents renders a protocol event log.
func printEvents(out io.Writer, indent string, evs []nwade.Event) {
	for _, e := range evs {
		actor := "IM"
		if e.Actor != 0 {
			actor = e.Actor.String()
		}
		fmt.Fprintf(out, "%s%-10v %-22v %-5s", indent, e.At.Round(time.Millisecond), e.Type, actor)
		if e.Subject != 0 {
			fmt.Fprintf(out, " subject=%v", e.Subject)
		}
		if e.Info != "" {
			fmt.Fprintf(out, "  %s", e.Info)
		}
		fmt.Fprintln(out)
	}
}

// finishObs seals the sink (writing the trace's sum record) and prints
// the report when -obs asked for it. Safe on a nil sink.
func finishObs(out io.Writer, sink *obs.Sink, report bool, tracePath string) error {
	if sink == nil {
		return nil
	}
	if err := sink.Close(); err != nil {
		return err
	}
	if report {
		fmt.Fprintln(out)
		sink.WriteReport(out)
	}
	if tracePath != "" {
		fmt.Fprintf(out, "wrote trace %s\n", tracePath)
	}
	return nil
}

// runRounds executes a multi-seed replica sweep across the eval worker
// pool and prints per-round and aggregate traffic summaries.
func runRounds(out io.Writer, cfg sim.Scenario, cf *cliconf.Flags, rounds, workers int, traceOut string, obsRep bool) error {
	var sink *obs.Sink
	if traceOut != "" || obsRep {
		if traceOut != "" && workers != 1 {
			// Concurrent replicas would interleave their trace records.
			fmt.Fprintln(out, "note: -trace forces -workers 1")
			workers = 1
		}
		sr := singleRun{TraceOut: traceOut, ObsRep: obsRep}
		var cleanup func()
		var err error
		sink, cleanup, err = newSink(cfg, sr)
		if err != nil {
			return err
		}
		defer cleanup()
	}
	seeds := make([]int64, rounds)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	start := time.Now()
	results, err := eval.RunCells(workers, seeds, func(seed int64) (metrics.RunResult, error) {
		rc := cfg
		rc.Seed = seed
		opts := []sim.Option{}
		if sink != nil {
			opts = append(opts, sim.WithObs(sink))
		}
		engine, err := sim.New(rc, opts...)
		if err != nil {
			return metrics.RunResult{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		return engine.Run(), nil
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Fprintf(out, "intersection : %s\n", cfg.Intersection)
	fmt.Fprintf(out, "scenario     : %s\n", cfg.Attack.Name)
	fmt.Fprintf(out, "density      : %g veh/min for %v (NWADE %v)\n", cfg.RatePerMin, cfg.Duration, cfg.NWADE)
	if cf.Faults != "" || cfg.Resilience {
		faults := cf.Faults
		if faults == "" {
			faults = "none"
		}
		fmt.Fprintf(out, "faults       : %s (retrans %v)\n", faults, cfg.Resilience)
	}
	fmt.Fprintf(out, "replicas     : %d (seeds %d..%d, workers=%d, %v wall)\n\n",
		rounds, cfg.Seed, seeds[rounds-1], workers, wall.Round(time.Millisecond))
	fmt.Fprintf(out, "  %-6s %8s %8s %12s %11s\n", "seed", "spawned", "exited", "veh/min", "collisions")
	var spawned, exited, collisions int
	var dropped, duplicated, retransmits int
	var thr float64
	for i, res := range results {
		fmt.Fprintf(out, "  %-6d %8d %8d %12.1f %11d\n", seeds[i], res.Spawned, res.Exited, res.Throughput(), res.Collisions)
		spawned += res.Spawned
		exited += res.Exited
		collisions += res.Collisions
		thr += res.Throughput()
		dropped += res.Net.FaultDropped
		duplicated += res.Net.Duplicated
		retransmits += res.Retransmits
	}
	n := float64(rounds)
	fmt.Fprintf(out, "  %-6s %8.1f %8.1f %12.1f %11.1f\n", "mean",
		float64(spawned)/n, float64(exited)/n, thr/n, float64(collisions)/n)
	if cf.Faults != "" || cfg.Resilience {
		fmt.Fprintf(out, "\n  fault-dropped %d, duplicated %d, retransmits %d (totals)\n",
			dropped, duplicated, retransmits)
	}
	return finishObs(out, sink, obsRep, traceOut)
}

// runWithCheckpoints drives the engine to its duration, writing a
// checkpoint (ckpt-<time>.snap) at every multiple of the interval. The
// result is identical to engine.Run(): checkpointing observes state at
// tick boundaries without perturbing it.
func runWithCheckpoints(out io.Writer, e *sim.Engine, cfg sim.Scenario, every time.Duration, dir string) (metrics.RunResult, error) {
	spec, err := snap.SpecFromScenario(cfg)
	if err != nil {
		return metrics.RunResult{}, err
	}
	duration := cfg.Normalize().Duration
	for next := e.Now() + every; next < duration; next += every {
		for e.Now() < next {
			e.Step()
		}
		path := filepath.Join(dir, fmt.Sprintf("ckpt-%s.snap", e.Now()))
		st, err := e.Snapshot()
		if err != nil {
			return metrics.RunResult{}, err
		}
		if err := snap.WriteFile(path, spec, st); err != nil {
			return metrics.RunResult{}, err
		}
		fmt.Fprintf(out, "checkpoint   : %s\n", path)
	}
	return e.Run(), nil
}
