package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwade/internal/obs"
)

func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30", "-keybits", "512"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"spawned", "collisions", "network packets by kind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplicas(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30",
		"-keybits", "512", "-rounds", "2", "-workers", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "mean") {
		t.Fatalf("replica output missing aggregate row:\n%s", buf.String())
	}
}

func TestRunTraceAndObs(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30",
		"-keybits", "512", "-trace", trace, "-obs"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "observability summary") {
		t.Fatalf("-obs output missing report:\n%s", buf.String())
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Meta == nil || tr.Meta.Tool != "nwade-sim" || tr.Meta.Scenario != "benign" {
		t.Fatalf("trace meta = %+v", tr.Meta)
	}
	if tr.Summary == nil {
		t.Fatalf("trace missing sum record")
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "nope"},
		{"-intersection", "nope"},
		{"-faults", "nope"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}

func TestCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{"-scenario", "V1", "-attack-at", "2s", "-duration", "6s",
		"-density", "40", "-keybits", "1024", "-seed", "3",
		"-checkpoint-every", "2s", "-checkpoint-dir", dir}
	if err := run(args, &buf); err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"ckpt-2s.snap", "ckpt-4s.snap"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing checkpoint %s: %v\n%s", name, err, buf.String())
		}
	}

	buf.Reset()
	if err := run([]string{"-resume", filepath.Join(dir, "ckpt-4s.snap")}, &buf); err != nil {
		t.Fatalf("resume: %v\n%s", err, buf.String())
	}
	out := buf.String()
	// "seed 3" guards the banner against reporting flag defaults
	// instead of the checkpoint's spec on -resume.
	for _, want := range []string{"resumed", "at 4s", "spawned", "seed 3", "for 6s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("resume output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckpointRejectsReplicas(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rounds", "2", "-checkpoint-every", "1s"}, &buf); err == nil {
		t.Fatal("-checkpoint-every with -rounds should fail")
	}
	if err := run([]string{"-rounds", "2", "-resume", "x.snap"}, &buf); err == nil {
		t.Fatal("-resume with -rounds should fail")
	}
}
