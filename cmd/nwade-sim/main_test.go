package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nwade/internal/obs"
)

func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30", "-keybits", "512"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"spawned", "collisions", "network packets by kind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplicas(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30",
		"-keybits", "512", "-rounds", "2", "-workers", "1"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "mean") {
		t.Fatalf("replica output missing aggregate row:\n%s", buf.String())
	}
}

func TestRunTraceAndObs(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var buf bytes.Buffer
	args := []string{"-scenario", "benign", "-duration", "2s", "-density", "30",
		"-keybits", "512", "-trace", trace, "-obs"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "observability summary") {
		t.Fatalf("-obs output missing report:\n%s", buf.String())
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if tr.Meta == nil || tr.Meta.Tool != "nwade-sim" || tr.Meta.Scenario != "benign" {
		t.Fatalf("trace meta = %+v", tr.Meta)
	}
	if tr.Summary == nil {
		t.Fatalf("trace missing sum record")
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "nope"},
		{"-intersection", "nope"},
		{"-faults", "nope"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}
