// nwade-lint runs the repository's determinism & correctness analyzer
// suite (internal/analysis) over package patterns, printing one
// "file:line: [analyzer] message" diagnostic per finding and exiting
// nonzero when any survive. Stdlib only: packages are type-checked with
// go/parser + go/types against GOROOT source, so the tool needs no
// module downloads and go.mod stays dependency-free.
//
// Usage:
//
//	go run ./cmd/nwade-lint ./...
//	go run ./cmd/nwade-lint ./internal/nwade ./internal/eval/...
//
// Suppression: //lint:ignore <analyzer> <reason> on the offending line
// or the line directly above it. The reason is mandatory. DESIGN.md §9
// documents every rule.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nwade/internal/analysis"
)

func main() {
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwade-lint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "nwade-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// run lints the requested patterns and returns the surviving finding
// count (the caller maps >0 to exit code 1, errors to 2).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("nwade-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: nwade-lint [packages]\n\n"+
			"Patterns: ./... (module tree), dir, dir/... — relative to the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 0, err
	}

	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	root, err := findModuleRoot()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 0, err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := expand(loader, root, pat)
		if err != nil {
			return 0, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}

	diags, err := analysis.LintDirs(loader, dirs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(out, rel)
	}
	return len(diags), nil
}

// expand resolves one package pattern to directories.
func expand(l *analysis.Loader, root, pat string) ([]string, error) {
	base, recursive := pat, false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		base, recursive = rest, true
	}
	if base == "." || base == "" {
		base = root
	} else if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	if recursive {
		return l.FindPackages(base)
	}
	return []string{base}, nil
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nwade-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
