// nwade-lint runs the repository's determinism & correctness analyzer
// suite (internal/analysis) over package patterns, printing one
// "file:line: [analyzer] message" diagnostic per finding and exiting
// nonzero when any survive. Stdlib only: packages are type-checked with
// go/parser + go/types against GOROOT source, so the tool needs no
// module downloads and go.mod stays dependency-free.
//
// Usage:
//
//	go run ./cmd/nwade-lint ./...
//	go run ./cmd/nwade-lint ./internal/nwade ./internal/eval/...
//	go run ./cmd/nwade-lint -json ./... > findings.json
//	go run ./cmd/nwade-lint -github -baseline lint.baseline.json ./...
//
// Output modes: the default is the human "file:line: [analyzer] message"
// form; -json emits a machine-readable findings array; -github emits
// GitHub Actions workflow commands so CI findings surface as inline
// error annotations on the pull request.
//
// A baseline file (-baseline) holds accepted findings as the same JSON
// array -json writes: findings matching a baseline entry by (file,
// analyzer, message) are suppressed, so a rule can land before the last
// offender is fixed without making the gate advisory. The repository's
// checked-in baseline (lint.baseline.json) is empty and must stay so.
//
// Suppression: //lint:ignore <analyzer> <reason> on the offending line
// or the line directly above it (comma-separate several analyzers). The
// reason is mandatory. DESIGN.md §9 and §14 document every rule.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nwade/internal/analysis"
)

func main() {
	findings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwade-lint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "nwade-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// finding is the machine-readable diagnostic form shared by -json
// output and the baseline file.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run lints the requested patterns and returns the surviving finding
// count (the caller maps >0 to exit code 1, errors to 2).
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("nwade-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	github := fs.Bool("github", false, "emit findings as GitHub Actions error annotations")
	baselinePath := fs.String("baseline", "", "JSON baseline file of accepted findings to suppress")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: nwade-lint [flags] [packages]\n\n"+
			"Patterns: ./... (module tree), dir, dir/... — relative to the module root.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *asJSON && *github {
		return 0, fmt.Errorf("-json and -github are mutually exclusive")
	}

	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	root, err := findModuleRoot()
	if err != nil {
		return 0, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return 0, err
	}
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		return 0, err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := expand(loader, root, pat)
		if err != nil {
			return 0, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}

	diags, err := analysis.LintDirs(loader, dirs, analyzers)
	if err != nil {
		return 0, err
	}
	var findings []finding
	for _, d := range diags {
		file := d.Pos.Filename
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			file = filepath.ToSlash(r)
		}
		f := finding{File: file, Line: d.Pos.Line, Analyzer: d.Analyzer, Message: d.Message}
		if baseline[baselineKey(f)] {
			continue
		}
		findings = append(findings, f)
	}

	switch {
	case *asJSON:
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{} // encode as [], never null
		}
		if err := enc.Encode(findings); err != nil {
			return 0, err
		}
	case *github:
		for _, f := range findings {
			// GitHub Actions workflow command: renders as an inline error
			// annotation on the offending line of the PR diff.
			fmt.Fprintf(out, "::error file=%s,line=%d,title=nwade-lint %s::%s\n",
				f.File, f.Line, f.Analyzer, escapeAnnotation(f.Message))
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	return len(findings), nil
}

// baselineKey identifies a finding for baseline matching. Line numbers
// are deliberately excluded: unrelated edits shift them, and a stale
// baseline that silently stops matching would re-fail the build.
func baselineKey(f finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// loadBaseline reads a -json findings array to suppress ("" means no
// baseline; an empty array is valid and suppresses nothing).
func loadBaseline(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []finding
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	set := make(map[string]bool, len(entries))
	for _, f := range entries {
		set[baselineKey(f)] = true
	}
	return set, nil
}

// escapeAnnotation encodes a message for the workflow-command data
// section (its own mini escaping scheme, per the Actions docs).
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// expand resolves one package pattern to directories.
func expand(l *analysis.Loader, root, pat string) ([]string, error) {
	base, recursive := pat, false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		base, recursive = rest, true
	}
	if base == "." || base == "" {
		base = root
	} else if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	if recursive {
		return l.FindPackages(base)
	}
	return []string{base}, nil
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nwade-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
