// nwade-lint runs the repository's determinism & correctness analyzer
// suite (internal/analysis) over package patterns, printing one
// "file:line: [analyzer] message" diagnostic per finding and exiting
// nonzero when any survive. Stdlib only: packages are type-checked with
// go/parser + go/types against GOROOT source, so the tool needs no
// module downloads and go.mod stays dependency-free.
//
// Usage:
//
//	go run ./cmd/nwade-lint ./...
//	go run ./cmd/nwade-lint ./internal/nwade ./internal/eval/...
//
// Suppression: //lint:ignore <analyzer> <reason> on the offending line
// or the line directly above it. The reason is mandatory. DESIGN.md §9
// documents every rule.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nwade/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nwade-lint [packages]\n\n"+
			"Patterns: ./... (module tree), dir, dir/... — relative to the module root.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		expanded, err := expand(loader, root, pat)
		if err != nil {
			fatal(err)
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}

	diags, err := analysis.LintDirs(loader, dirs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nwade-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// expand resolves one package pattern to directories.
func expand(l *analysis.Loader, root, pat string) ([]string, error) {
	base, recursive := pat, false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		base, recursive = rest, true
	}
	if base == "." || base == "" {
		base = root
	} else if !filepath.IsAbs(base) {
		base = filepath.Join(root, base)
	}
	if recursive {
		return l.FindPackages(base)
	}
	return []string{base}, nil
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("nwade-lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nwade-lint:", err)
	os.Exit(2)
}
