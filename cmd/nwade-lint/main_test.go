package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	findings, err := run([]string{"-list"}, &buf)
	if err != nil {
		t.Fatalf("run -list: %v", err)
	}
	if findings != 0 {
		t.Fatalf("-list reported %d findings", findings)
	}
	out := buf.String()
	for _, want := range []string{"nodeterminism", "maprange", "floateq", "errdrop", "hotalloc", "phasepurity", "snapdrift"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONAndGithubAreExclusive(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"-json", "-github"}, &buf); err == nil {
		t.Fatal("-json -github should be rejected")
	}
}

func TestBaselineRejectsMalformedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := run([]string{"-baseline", path, "-list"}, &buf); err != nil {
		// -list exits before the baseline loads; run again against a tiny
		// package set to hit the loader.
		t.Fatalf("unexpected -list error: %v", err)
	}
	if _, err := run([]string{"-baseline", path, "./cmd/nwade-lint"}, &buf); err == nil {
		t.Fatal("malformed baseline should be an error")
	}
}

func TestBaselineKeyIgnoresLine(t *testing.T) {
	a := finding{File: "x.go", Line: 10, Analyzer: "maprange", Message: "m"}
	b := finding{File: "x.go", Line: 99, Analyzer: "maprange", Message: "m"}
	if baselineKey(a) != baselineKey(b) {
		t.Fatal("baseline keys must not depend on line numbers")
	}
	c := finding{File: "x.go", Line: 10, Analyzer: "floateq", Message: "m"}
	if baselineKey(a) == baselineKey(c) {
		t.Fatal("baseline keys must distinguish analyzers")
	}
}

func TestCheckedInBaselineIsEmpty(t *testing.T) {
	// The repository gate runs with lint.baseline.json; it exists so a
	// future rule can land with known offenders, but today it must stay
	// empty — a finding belongs in the code or in a //lint:ignore with a
	// reason, not parked invisibly in the baseline.
	data, err := os.ReadFile("../../lint.baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []finding
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("lint.baseline.json is not a findings array: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("lint.baseline.json holds %d parked finding(s); fix or //lint:ignore them instead", len(entries))
	}
}

func TestEscapeAnnotation(t *testing.T) {
	got := escapeAnnotation("50% of\nlines")
	if got != "50%25 of%0Alines" {
		t.Fatalf("escapeAnnotation = %q", got)
	}
}
