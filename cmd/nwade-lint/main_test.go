package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	findings, err := run([]string{"-list"}, &buf)
	if err != nil {
		t.Fatalf("run -list: %v", err)
	}
	if findings != 0 {
		t.Fatalf("-list reported %d findings", findings)
	}
	out := buf.String()
	for _, want := range []string{"nodeterminism", "maprange", "floateq", "errdrop", "hotalloc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}
