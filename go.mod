module nwade

go 1.22
