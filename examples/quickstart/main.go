// Quickstart: the NWADE pipeline end to end on one batch of vehicles.
//
// It builds a 4-way intersection, schedules a batch of arrivals with the
// reservation manager, packages the plans into a signed blockchain block,
// verifies the block the way every vehicle does (Algorithm 1), and then
// shows the neighborhood watch catching a deviation (Algorithm 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"nwade/internal/chain"
	"nwade/internal/geom"
	"nwade/internal/intersection"
	"nwade/internal/nwade"
	"nwade/internal/plan"
	"nwade/internal/sched"
	"nwade/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The road: a conventional 4-way cross with 2 lanes per leg.
	inter, err := intersection.Cross4(intersection.Config{}, 2)
	if err != nil {
		return err
	}
	fmt.Printf("intersection: %s (%d routes, %d conflict zones)\n",
		inter.Name, len(inter.Routes), len(inter.Conflicts()))

	// 2. Traffic: a batch of Poisson arrivals.
	gen := traffic.NewGenerator(inter, traffic.Config{RatePerMin: 80}, 1)
	var reqs []sched.Request
	for _, a := range gen.Until(10 * time.Second) {
		reqs = append(reqs, sched.Request{
			Vehicle: a.Vehicle, Char: a.Char, Route: a.Route,
			ArriveAt: a.At, Speed: a.Speed,
		})
	}
	fmt.Printf("batch: %d scheduling requests\n", len(reqs))

	// 3. The intersection manager: conflict-free reservation scheduling.
	ledger := sched.NewLedger(inter)
	plans, err := (&sched.Reservation{}).Schedule(reqs, 0, ledger)
	if err != nil {
		return err
	}
	ledger.Add(plans...)
	for _, p := range plans[:min(3, len(plans))] {
		in, _ := p.TimeAt(mustRoute(inter, p.RouteID).CrossStart)
		fmt.Printf("  %v: enters the conflict area at %v, done at %v\n",
			p.Vehicle, in.Round(time.Millisecond), p.End().Round(time.Millisecond))
	}

	// 4. Block packaging: plans become a signed block of the chain.
	signer, err := chain.NewSigner(chain.DefaultKeyBits)
	if err != nil {
		return err
	}
	block, err := chain.Package(signer, nil, 10*time.Second, plans)
	if err != nil {
		return err
	}
	fmt.Printf("block %d: %d plans, merkle root %v\n", block.Seq, len(block.Plans), block.Root)

	// 5. Vehicle-side verification (Algorithm 1): signature, root,
	// linkage, and independent plan-conflict checking.
	cache := chain.NewChain(signer.Public(), 64)
	checker := &plan.ConflictChecker{Inter: inter}
	if err := nwade.VerifyBlock(cache, checker, block, nil); err != nil {
		return fmt.Errorf("verification should pass: %w", err)
	}
	fmt.Println("algorithm 1: block verified — signature, chain link and plan consistency all hold")

	// 6. The neighborhood watch (Algorithm 2): a watcher compares a
	// neighbor's sensed status against its plan.
	suspect := plans[0]
	r := mustRoute(inter, suspect.RouteID)
	at := suspect.Start() + 8*time.Second
	onPlan := nwade.ExpectedStatus(suspect, r, at)
	if _, _, violated := nwade.CheckConduct(suspect, r, onPlan, nwade.DefaultTolerance()); violated {
		return fmt.Errorf("on-plan vehicle flagged")
	}
	offPlan := onPlan
	offPlan.Pos = offPlan.Pos.Add(geom.V(0, 8)) // drifting out of its lane
	posErr, _, violated := nwade.CheckConduct(suspect, r, offPlan, nwade.DefaultTolerance())
	fmt.Printf("algorithm 2: %v drifting %.1f m off plan -> violation reported: %v\n",
		suspect.Vehicle, posErr, violated)
	return nil
}

func mustRoute(in *intersection.Intersection, id int) *intersection.Route {
	r, err := in.Route(id)
	if err != nil {
		panic(err)
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
