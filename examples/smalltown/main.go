// Smalltown: the paper's low-density scenario — a 3-way roundabout at 20
// vehicles per minute, where a single compromised vehicle (attack setting
// V1) starts speeding through the ring.
//
// The example runs the full simulator and narrates the neighborhood-watch
// response: deviation spotted, incident reported, verified, evacuation
// around the rogue vehicle, and post-evacuation recovery.
//
// Run with: go run ./examples/smalltown
package main

import (
	"fmt"
	"log"
	"time"

	"nwade/internal/attack"
	"nwade/internal/intersection"
	"nwade/internal/nwade"
	"nwade/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inter, err := intersection.Roundabout3(intersection.Config{})
	if err != nil {
		return err
	}
	sc, _ := attack.ByName("V1", 30*time.Second)
	engine, err := sim.New(sim.Scenario{
		Inter:      inter,
		Duration:   90 * time.Second,
		RatePerMin: 20, // small-town density
		Seed:       7,
		Attack:     sc,
		NWADE:      true,
		KeyBits:    1024,
	})
	if err != nil {
		return err
	}
	res := engine.Run()
	roles := engine.Roles()
	fmt.Printf("small town: %s at 20 veh/min, rogue vehicle %v speeding from t=30s\n\n",
		inter.Name, roles.Violator)

	interesting := map[nwade.EventType]bool{
		nwade.EvDeviationSpotted:  true,
		nwade.EvReportSent:        true,
		nwade.EvDirectCheck:       true,
		nwade.EvVoteRound:         true,
		nwade.EvIncidentConfirmed: true,
		nwade.EvEvacuationStarted: true,
		nwade.EvEvacPlanAdopted:   true,
		nwade.EvRecoveryStarted:   true,
	}
	shown := 0
	for _, e := range res.Collector.Events() {
		if !interesting[e.Type] || shown > 25 {
			continue
		}
		shown++
		actor := "IM"
		if e.Actor != 0 {
			actor = e.Actor.String()
		}
		fmt.Printf("%8v  %-20v %-4s", e.At.Round(100*time.Millisecond), e.Type, actor)
		if e.Subject != 0 {
			fmt.Printf("  about %v", e.Subject)
		}
		fmt.Println()
	}
	fmt.Printf("\n%d vehicles passed, %d collisions, detection worked: %v\n",
		res.Exited, res.Collisions,
		res.Collector.Count(nwade.EvIncidentConfirmed) > 0)
	return nil
}
