// Ledgeraudit: the travel-plan blockchain as an offline audit artifact.
//
// A vehicle that crossed the intersection can keep the blocks it received
// and later prove what the intersection manager instructed everyone to
// do. The example builds a chain, audits it, then demonstrates the three
// tamper classes Algorithm 1 distinguishes: forged signature, broken
// linkage, and modified plan content (Merkle root mismatch) — plus a
// conflicting-schedule block that passes all cryptography and is caught
// only by the plan-level consistency check.
//
// Run with: go run ./examples/ledgeraudit
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"nwade/internal/chain"
	"nwade/internal/intersection"
	"nwade/internal/nwade"
	"nwade/internal/plan"
	"nwade/internal/sched"
	"nwade/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inter, err := intersection.Cross4(intersection.Config{}, 2)
	if err != nil {
		return err
	}
	signer, err := chain.NewSigner(chain.DefaultKeyBits)
	if err != nil {
		return err
	}

	// Build a 4-block chain of real schedules.
	gen := traffic.NewGenerator(inter, traffic.Config{RatePerMin: 90}, 11)
	ledger := sched.NewLedger(inter)
	var blocks []*chain.Block
	var prev *chain.Block
	for i := 0; i < 4; i++ {
		batchStart := time.Duration(i) * 4 * time.Second
		window := batchStart + 4*time.Second
		var reqs []sched.Request
		for _, a := range gen.Until(window) {
			reqs = append(reqs, sched.Request{Vehicle: a.Vehicle, Char: a.Char, Route: a.Route, ArriveAt: a.At, Speed: a.Speed})
		}
		// Scheduling happens at the window start: every request's
		// arrival is still in the future, as in the live system.
		plans, err := (&sched.Reservation{}).Schedule(reqs, batchStart, ledger)
		if err != nil {
			return err
		}
		ledger.Add(plans...)
		b, err := chain.Package(signer, prev, window, plans)
		if err != nil {
			return err
		}
		blocks = append(blocks, b)
		prev = b
	}

	// Audit: replay the whole chain through a fresh verifier.
	audit := chain.NewChain(signer.Public(), 0)
	checker := &plan.ConflictChecker{Inter: inter}
	for _, b := range blocks {
		if err := nwade.VerifyBlock(audit, checker, b, nil); err != nil {
			return fmt.Errorf("audit failed at block %d: %w", b.Seq, err)
		}
	}
	fmt.Printf("audited %d blocks, %d plans total — chain is internally consistent\n",
		audit.Len(), len(audit.AllPlans()))

	// Tamper class 1: forged signature.
	forged := *blocks[1]
	forged.Sig = append([]byte{}, blocks[1].Sig...)
	forged.Sig[10] ^= 0x42
	if err := chain.VerifySignature(signer.Public(), &forged); errors.Is(err, chain.ErrBadSignature) {
		fmt.Println("tamper 1 (forged signature):   caught by signature check")
	}

	// Tamper class 2: broken linkage (history rewrite).
	rewrite := *blocks[2]
	rewrite.PrevHash = chain.HashLeaf([]byte("fabricated history"))
	if err := chain.VerifyLink(blocks[1], &rewrite); errors.Is(err, chain.ErrBrokenLink) {
		fmt.Println("tamper 2 (broken chain link):  caught by hash-link check")
	}

	// Tamper class 3: plan content modified after signing.
	modified := *blocks[3]
	modified.Plans = append([]*plan.TravelPlan{}, blocks[3].Plans...)
	alt := modified.Plans[0].Clone()
	alt.Waypoints[len(alt.Waypoints)-1].T -= 5 * time.Second
	modified.Plans[0] = alt
	if err := chain.VerifyRoot(&modified); errors.Is(err, chain.ErrBadRoot) {
		fmt.Println("tamper 3 (edited travel plan): caught by merkle-root check")
	}

	// Tamper class 4: a VALIDLY SIGNED block whose plans collide — only
	// the plan-level consistency check (Algorithm 1 step ii) sees it.
	evilPlans := []*plan.TravelPlan{blocks[3].Plans[0].Clone()}
	victim := findCrossingPlan(inter, audit.AllPlans(), evilPlans[0])
	if victim != nil {
		shift := retime(evilPlans[0], victim, inter)
		evil, err := chain.Package(signer, blocks[3], 20*time.Second, evilPlans)
		if err != nil {
			return err
		}
		err = nwade.VerifyBlock(audit, checker, evil, nil)
		if errors.Is(err, nwade.ErrConflictingPlans) {
			fmt.Printf("tamper 4 (conflicting plans):  signature and hashes all VALID (shift %v),\n", shift)
			fmt.Println("                               caught only by the shared conflict checker")
		} else {
			return fmt.Errorf("conflicting block not caught: %v", err)
		}
	}
	return nil
}

// findCrossingPlan picks a plan whose route conflicts with p's route.
func findCrossingPlan(in *intersection.Intersection, all []*plan.TravelPlan, p *plan.TravelPlan) *plan.TravelPlan {
	for _, q := range all {
		if q.Vehicle == p.Vehicle {
			continue
		}
		for _, cz := range in.ConflictsOf(p.RouteID) {
			if cz.Other(p.RouteID) == q.RouteID {
				return q
			}
		}
	}
	return nil
}

// retime shifts p so it occupies a conflict zone exactly when victim
// does, returning the applied shift.
func retime(p, victim *plan.TravelPlan, in *intersection.Intersection) time.Duration {
	for _, cz := range in.ConflictsOf(victim.RouteID) {
		if cz.Other(victim.RouteID) != p.RouteID {
			continue
		}
		vLo, _, _ := cz.WindowFor(victim.RouteID)
		pLo, _, _ := cz.WindowFor(p.RouteID)
		tv, _ := victim.TimeAt(vLo)
		tp, _ := p.TimeAt(pLo)
		shift := tv - tp
		for i := range p.Waypoints {
			p.Waypoints[i].T += shift
		}
		return shift
	}
	return 0
}
