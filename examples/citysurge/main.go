// Citysurge: the paper's hardest scenario — a dense 4-way intersection
// (120 veh/min) where the intersection manager itself is compromised and
// colludes with five hacked vehicles (attack setting IM_V5).
//
// The compromised manager dismisses every genuine incident report and
// broadcasts a sham evacuation framing an innocent vehicle; the coalition
// backs the lies in verification votes. The example shows the defense
// holding anyway: watchers keep observing the persistent violation, stop
// trusting the manager, and warn the intersection with global reports.
//
// Run with: go run ./examples/citysurge
package main

import (
	"fmt"
	"log"
	"time"

	"nwade/internal/attack"
	"nwade/internal/intersection"
	"nwade/internal/nwade"
	"nwade/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inter, err := intersection.Cross4Lanes(intersection.Config{}, []int{3, 2, 3, 2})
	if err != nil {
		return err
	}
	sc, _ := attack.ByName("IM_V5", 30*time.Second)
	engine, err := sim.New(sim.Scenario{
		Inter:      inter,
		Duration:   90 * time.Second,
		RatePerMin: 120, // big-city density
		Seed:       3,
		Attack:     sc,
		NWADE:      true,
		KeyBits:    1024,
	})
	if err != nil {
		return err
	}
	res := engine.Run()
	roles := engine.Roles()
	col := res.Collector

	fmt.Printf("city surge: %s at 120 veh/min\n", inter.Name)
	fmt.Printf("compromised: the intersection manager + %d vehicles (violator %v)\n\n",
		len(roles.All), roles.Violator)

	reports := col.CountWhere(func(e nwade.Event) bool {
		return e.Type == nwade.EvReportSent && !roles.All[e.Actor]
	})
	ignored := col.Count(nwade.EvReportIgnored) + col.Count(nwade.EvAlarmDismissed)
	globals := col.DistinctActors(func(e nwade.Event) bool {
		return e.Type == nwade.EvGlobalSent && e.Actor != 0 && !roles.All[e.Actor]
	})
	framed := col.CountWhere(func(e nwade.Event) bool { return e.Type == nwade.EvFalseAccusationSeen })
	selfEvacs := col.CountWhere(func(e nwade.Event) bool {
		return e.Type == nwade.EvSelfEvacuation && !roles.All[e.Actor]
	})

	fmt.Printf("honest incident reports sent ........ %d\n", reports)
	fmt.Printf("reports the rogue IM buried ......... %d\n", ignored)
	fmt.Printf("sham evacuation exposed by witnesses  %d sightings\n", framed)
	fmt.Printf("benign vehicles broadcasting globals  %d\n", len(globals))
	fmt.Printf("benign vehicles self-evacuating ..... %d\n", selfEvacs)
	detected := len(globals) >= 2
	fmt.Printf("\ncommunity verdict: intersection manager compromised = %v\n", detected)
	fmt.Printf("(%d vehicles still made it through; %d collisions)\n", res.Exited, res.Collisions)
	return nil
}
